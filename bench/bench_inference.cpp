// Compiled-inference micro-benchmark: per-batch scoring latency of the
// tape path (eval-mode Forward, full re-encode every batch) against the
// compiled InferencePlan path (cached all-user embeddings + workspace
// arena) on the EpinionsLike preset. Verifies bitwise parity between the
// two paths before timing, reports the cold plan-build cost, and emits a
// `BENCH_inference.json` result file alongside the usual BENCH_META line.
// Also sweeps the shard-aware plan across shard counts (--shards=1,2,4),
// reporting per-K plan build time (encode + spill) and scoring latency
// through the bounded-LRU fault path, parity-gated against the monolithic
// plan; the JSON gains a "shards" array.
//
// The kernel/precision matrix (DESIGN.md §15) times the batch-64 scoring
// loop under the scalar oracle, the AVX2 kernels, and the int8-quantized
// table, reporting resident table bytes per user and CHECKing the two-tier
// parity contract (scalar-vs-AVX2 on probabilities, fp32-vs-int8 within
// quantization tolerance). A final AUC guard sweeps the model zoo and
// CHECKs that int8 moves test AUC by at most 0.002 per model; the JSON
// gains "kernels" and "auc_guard" arrays.
//
//   ./build/bench/bench_inference [--scale=0.06] [--iters=30] [--shards=1,2,4]
//                                 [--kernel_isa=scalar|avx2|auto]

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cpu.h"
#include "common/fileio.h"
#include "common/stopwatch.h"
#include "core/metrics.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/split.h"
#include "hypergraph/builders.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"

namespace {

using namespace ahntp;

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

std::vector<float> TapeProbabilities(
    models::TrustPredictor* predictor,
    const std::vector<data::TrustPair>& pairs) {
  models::TrustPredictor::PairOutput out = predictor->Forward(pairs);
  std::vector<float> probs(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    probs[i] = out.probability.value().At(i, 0);
  }
  return probs;
}

struct Row {
  int batch = 0;
  double tape_ms = 0.0;
  double compiled_ms = 0.0;
  double speedup = 0.0;
};

struct ShardRow {
  int shards = 0;
  double plan_build_ms = 0.0;  // encode + per-shard spill
  double sharded_ms = 0.0;     // median per-batch, LRU fault path included
};

struct KernelRow {
  const char* isa = "";
  const char* precision = "";
  double score_ms = 0.0;        // batch-64 median, warm plan
  double bytes_per_user = 0.0;  // resident embedding-table bytes / user
  double max_delta = 0.0;       // vs the scalar fp32 reference scores
};

struct AucRow {
  std::string model;
  double auc_fp32 = 0.0;
  double auc_int8 = 0.0;
  double delta = 0.0;
};

float MaxAbsDelta(const std::vector<float>& a, const std::vector<float>& b) {
  AHNTP_CHECK_EQ(a.size(), b.size());
  float delta = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    delta = std::max(delta, std::fabs(a[i] - b[i]));
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  int iters = static_cast<int>(flags.GetInt("iters", 30));
  bench::PrintBanner("inference",
                     "per-batch latency: tape path vs compiled plan",
                     options);

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(
          data::GeneratorConfig::EpinionsLike(options.scale))
          .Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto graph_result = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK_OK(graph_result.status());
  graph::Digraph graph = std::move(graph_result).value();
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &graph;
  inputs.dataset = &dataset;
  inputs.hidden_dims = options.dims;
  Rng rng(options.seed);
  inputs.rng = &rng;
  auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
  AHNTP_CHECK_OK(created.status());
  std::unique_ptr<models::TrustPredictor> predictor =
      std::move(created).value();
  predictor->SetTraining(false);
  std::printf("users=%zu, test pairs=%zu\n", dataset.num_users,
              split.test_pairs.size());

  // Cold plan build: the one-time all-user encode a serving process pays at
  // warm-up or reload, never per batch.
  Stopwatch build_timer;
  predictor->WarmInferencePlan();
  double build_ms = build_timer.ElapsedMillis();
  std::printf("plan build (all-user encode): %.3f ms\n\n", build_ms);

  const std::vector<int> batch_sizes = {16, 64, 256};
  std::vector<Row> rows;
  std::printf("%7s %12s %14s %9s\n", "batch", "tape_ms", "compiled_ms",
              "speedup");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (int batch : batch_sizes) {
    std::vector<data::TrustPair> pairs;
    for (int i = 0; i < batch; ++i) {
      pairs.push_back(split.test_pairs[static_cast<size_t>(i) %
                                       split.test_pairs.size()]);
    }

    // Parity gate: the two paths must agree bit-for-bit before any timing
    // is worth reporting.
    std::vector<float> tape = TapeProbabilities(predictor.get(), pairs);
    std::vector<float> compiled = predictor->PredictProbabilities(pairs);
    for (size_t i = 0; i < pairs.size(); ++i) {
      AHNTP_CHECK(tape[i] == compiled[i])
          << "parity violation at pair " << i << ": tape=" << tape[i]
          << " compiled=" << compiled[i];
    }

    Row row;
    row.batch = batch;
    std::vector<double> tape_ms, compiled_ms;
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)TapeProbabilities(predictor.get(), pairs);
      tape_ms.push_back(t.ElapsedMillis());
    }
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)predictor->PredictProbabilities(pairs);
      compiled_ms.push_back(t.ElapsedMillis());
    }
    row.tape_ms = MedianMs(tape_ms);
    row.compiled_ms = MedianMs(compiled_ms);
    row.speedup = row.compiled_ms > 0.0 ? row.tape_ms / row.compiled_ms : 0.0;
    rows.push_back(row);
    std::printf("%7d %12.3f %14.3f %8.1fx\n", row.batch, row.tape_ms,
                row.compiled_ms, row.speedup);
    std::fflush(stdout);
  }

  // Sharded plan: per-shard-count build cost (encode + spill) and scoring
  // latency through the bounded-LRU fault path, parity-gated against the
  // monolithic plan (same weights, so bit-identical scores are required).
  const std::vector<int64_t> shard_counts =
      flags.GetIntList("shards", {1, 2, 4});
  const std::string spill_dir = "bench_inference_spill";
  const int shard_batch = 64;
  std::vector<data::TrustPair> shard_pairs;
  for (int i = 0; i < shard_batch; ++i) {
    shard_pairs.push_back(
        split.test_pairs[static_cast<size_t>(i) % split.test_pairs.size()]);
  }
  std::vector<float> monolithic = predictor->PredictProbabilities(shard_pairs);
  std::vector<ShardRow> shard_rows;
  std::printf("\n%7s %17s %13s\n", "shards", "plan_build_ms", "sharded_ms");
  std::printf("%s\n", std::string(40, '-').c_str());
  for (int64_t shards : shard_counts) {
    models::ShardedPlanOptions sharded;
    sharded.num_shards = static_cast<int>(shards);
    sharded.spill_dir = spill_dir;
    predictor->EnableShardedInference(sharded);
    ShardRow srow;
    srow.shards = static_cast<int>(shards);
    Stopwatch shard_build_timer;
    predictor->WarmInferencePlan();
    srow.plan_build_ms = shard_build_timer.ElapsedMillis();

    std::vector<float> sharded_probs =
        predictor->PredictProbabilities(shard_pairs);
    for (size_t i = 0; i < shard_pairs.size(); ++i) {
      AHNTP_CHECK(monolithic[i] == sharded_probs[i])
          << "sharded parity violation at pair " << i << " shards=" << shards;
    }

    std::vector<double> sharded_ms;
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)predictor->PredictProbabilities(shard_pairs);
      sharded_ms.push_back(t.ElapsedMillis());
    }
    srow.sharded_ms = MedianMs(sharded_ms);
    shard_rows.push_back(srow);
    std::printf("%7d %17.3f %13.3f\n", srow.shards, srow.plan_build_ms,
                srow.sharded_ms);
    std::fflush(stdout);
  }
  predictor->DisableShardedInference();
  std::filesystem::remove_all(spill_dir);

  // Kernel/precision matrix: the same batch-64 scoring loop under the
  // scalar oracle, the AVX2 kernels, and the int8 table. Each row re-encodes
  // under its own ISA (the encode feeds the cached table) and is
  // parity-gated against the scalar fp32 reference.
  const KernelIsa ambient_isa = ActiveKernelIsa();
  const bool avx2_ok = KernelIsaSupported(KernelIsa::kAvx2);
  SetKernelIsa(KernelIsa::kScalar);
  predictor->SetInferencePrecision(models::PlanPrecision::kFloat32);
  predictor->InvalidateCaches();
  predictor->WarmInferencePlan();
  const std::vector<float> scalar_ref =
      predictor->PredictProbabilities(shard_pairs);

  struct Combo {
    KernelIsa isa;
    models::PlanPrecision precision;
    double tolerance;  // max |Δprob| vs scalar fp32
  };
  std::vector<Combo> combos = {
      {KernelIsa::kScalar, models::PlanPrecision::kFloat32, 0.0}};
  if (avx2_ok) {
    // fp32 AVX2: FMA/reassociation noise only — a few float ulps through
    // the encode + cosine chain.
    combos.push_back({KernelIsa::kAvx2, models::PlanPrecision::kFloat32,
                      2e-4});
    combos.push_back({KernelIsa::kAvx2, models::PlanPrecision::kInt8, 0.06});
  }
  // int8 under the scalar kernels: quantization tolerance, same bound.
  combos.push_back({KernelIsa::kScalar, models::PlanPrecision::kInt8, 0.06});

  std::vector<KernelRow> kernel_rows;
  std::printf("\n%7s %5s %10s %15s %12s\n", "isa", "prec", "score_ms",
              "bytes_per_user", "max_delta");
  std::printf("%s\n", std::string(54, '-').c_str());
  for (const Combo& combo : combos) {
    SetKernelIsa(combo.isa);
    predictor->SetInferencePrecision(combo.precision);
    predictor->InvalidateCaches();
    predictor->WarmInferencePlan();
    std::vector<float> probs = predictor->PredictProbabilities(shard_pairs);
    KernelRow krow;
    krow.isa = KernelIsaName(combo.isa);
    krow.precision = models::PlanPrecisionName(combo.precision);
    krow.max_delta = MaxAbsDelta(probs, scalar_ref);
    AHNTP_CHECK(krow.max_delta <= combo.tolerance)
        << krow.isa << "/" << krow.precision
        << " drifted from the scalar fp32 oracle: max |Δprob| = "
        << krow.max_delta << " > " << combo.tolerance;
    std::vector<double> score_ms;
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)predictor->PredictProbabilities(shard_pairs);
      score_ms.push_back(t.ElapsedMillis());
    }
    krow.score_ms = MedianMs(score_ms);
    krow.bytes_per_user =
        static_cast<double>(predictor->inference_plan()->embedding_bytes()) /
        static_cast<double>(dataset.num_users);
    kernel_rows.push_back(krow);
    std::printf("%7s %5s %10.3f %15.1f %12.2e\n", krow.isa, krow.precision,
                krow.score_ms, krow.bytes_per_user, krow.max_delta);
    std::fflush(stdout);
  }
  SetKernelIsa(ambient_isa);
  predictor->SetInferencePrecision(models::PlanPrecision::kFloat32);

  // AUC guard: quantization may perturb individual probabilities but must
  // not change ranking quality. Sweep every zoo model on the test pairs and
  // CHECK |AUC(int8) - AUC(fp32)| <= 0.002.
  hypergraph::Hypergraph attr = hypergraph::BuildAttributeHypergroup(
      dataset.num_users, dataset.attributes);
  hypergraph::Hypergraph pairwise = hypergraph::BuildPairwiseHypergroup(graph);
  hypergraph::Hypergraph hypergraph =
      hypergraph::Hypergraph::Concat(attr, pairwise);
  models::ModelInputs zoo_inputs = inputs;
  zoo_inputs.hypergraph = &hypergraph;
  std::vector<float> labels;
  labels.reserve(split.test_pairs.size());
  for (const data::TrustPair& p : split.test_pairs) labels.push_back(p.label);
  std::vector<AucRow> auc_rows;
  std::printf("\n%12s %10s %10s %10s\n", "model", "auc_fp32", "auc_int8",
              "delta");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (const std::string& name : core::AvailableModels()) {
    Rng model_rng(options.seed);
    zoo_inputs.rng = &model_rng;
    auto zoo_created =
        core::CreatePredictor(name, zoo_inputs, core::AhntpConfig{});
    AHNTP_CHECK_OK(zoo_created.status());
    std::unique_ptr<models::TrustPredictor> zoo_model =
        std::move(zoo_created).value();
    zoo_model->SetTraining(false);
    std::vector<float> fp32_probs =
        zoo_model->PredictProbabilities(split.test_pairs);
    zoo_model->SetInferencePrecision(models::PlanPrecision::kInt8);
    std::vector<float> int8_probs =
        zoo_model->PredictProbabilities(split.test_pairs);
    AucRow arow;
    arow.model = name;
    arow.auc_fp32 = core::EvaluateBinary(fp32_probs, labels).auc;
    arow.auc_int8 = core::EvaluateBinary(int8_probs, labels).auc;
    arow.delta = std::fabs(arow.auc_int8 - arow.auc_fp32);
    AHNTP_CHECK(arow.delta <= 0.002)
        << name << ": int8 moved test AUC by " << arow.delta
        << " (fp32=" << arow.auc_fp32 << ", int8=" << arow.auc_int8 << ")";
    auc_rows.push_back(arow);
    std::printf("%12s %10.4f %10.4f %10.5f\n", arow.model.c_str(),
                arow.auc_fp32, arow.auc_int8, arow.delta);
    std::fflush(stdout);
  }

  std::string json =
      "{\n  \"bench\": \"inference\",\n  \"plan_build_ms\": " +
      StrFormat("%.4f", build_ms) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json += StrFormat(
        "    {\"batch\": %d, \"tape_ms\": %.4f, \"compiled_ms\": %.4f, "
        "\"speedup\": %.2f}%s\n",
        row.batch, row.tape_ms, row.compiled_ms, row.speedup,
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ],\n  \"shards\": [\n";
  for (size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardRow& srow = shard_rows[i];
    json += StrFormat(
        "    {\"shards\": %d, \"plan_build_ms\": %.4f, \"sharded_ms\": "
        "%.4f}%s\n",
        srow.shards, srow.plan_build_ms, srow.sharded_ms,
        i + 1 < shard_rows.size() ? "," : "");
  }
  json += "  ],\n  \"kernel_isa\": \"" +
          std::string(KernelIsaName(ambient_isa)) + "\",\n  \"kernels\": [\n";
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& krow = kernel_rows[i];
    json += StrFormat(
        "    {\"isa\": \"%s\", \"precision\": \"%s\", \"score_ms\": %.4f, "
        "\"bytes_per_user\": %.1f, \"max_delta_vs_scalar_fp32\": %.6g}%s\n",
        krow.isa, krow.precision, krow.score_ms, krow.bytes_per_user,
        krow.max_delta, i + 1 < kernel_rows.size() ? "," : "");
  }
  json += "  ],\n  \"auc_guard\": [\n";
  for (size_t i = 0; i < auc_rows.size(); ++i) {
    const AucRow& arow = auc_rows[i];
    json += StrFormat(
        "    {\"model\": \"%s\", \"auc_fp32\": %.5f, \"auc_int8\": %.5f, "
        "\"delta\": %.6f}%s\n",
        arow.model.c_str(), arow.auc_fp32, arow.auc_int8, arow.delta,
        i + 1 < auc_rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_inference.json", json));
  std::printf("\nwrote BENCH_inference.json (%zu rows)\n", rows.size());
  std::printf(
      "Expected shape: the tape path re-encodes every user per batch, so\n"
      "its latency is flat in batch size and dominated by the encode; the\n"
      "compiled path reads cached embeddings and scales with the batch\n"
      "alone, giving its largest speedups on small batches.\n");
  return 0;
}
