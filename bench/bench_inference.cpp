// Compiled-inference micro-benchmark: per-batch scoring latency of the
// tape path (eval-mode Forward, full re-encode every batch) against the
// compiled InferencePlan path (cached all-user embeddings + workspace
// arena) on the EpinionsLike preset. Verifies bitwise parity between the
// two paths before timing, reports the cold plan-build cost, and emits a
// `BENCH_inference.json` result file alongside the usual BENCH_META line.
// Also sweeps the shard-aware plan across shard counts (--shards=1,2,4),
// reporting per-K plan build time (encode + spill) and scoring latency
// through the bounded-LRU fault path, parity-gated against the monolithic
// plan; the JSON gains a "shards" array.
//
//   ./build/bench/bench_inference [--scale=0.06] [--iters=30] [--shards=1,2,4]

#include <algorithm>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/fileio.h"
#include "common/stopwatch.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/split.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"

namespace {

using namespace ahntp;

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

std::vector<float> TapeProbabilities(
    models::TrustPredictor* predictor,
    const std::vector<data::TrustPair>& pairs) {
  models::TrustPredictor::PairOutput out = predictor->Forward(pairs);
  std::vector<float> probs(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    probs[i] = out.probability.value().At(i, 0);
  }
  return probs;
}

struct Row {
  int batch = 0;
  double tape_ms = 0.0;
  double compiled_ms = 0.0;
  double speedup = 0.0;
};

struct ShardRow {
  int shards = 0;
  double plan_build_ms = 0.0;  // encode + per-shard spill
  double sharded_ms = 0.0;     // median per-batch, LRU fault path included
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  int iters = static_cast<int>(flags.GetInt("iters", 30));
  bench::PrintBanner("inference",
                     "per-batch latency: tape path vs compiled plan",
                     options);

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(
          data::GeneratorConfig::EpinionsLike(options.scale))
          .Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto graph_result = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK_OK(graph_result.status());
  graph::Digraph graph = std::move(graph_result).value();
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &graph;
  inputs.dataset = &dataset;
  inputs.hidden_dims = options.dims;
  Rng rng(options.seed);
  inputs.rng = &rng;
  auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
  AHNTP_CHECK_OK(created.status());
  std::unique_ptr<models::TrustPredictor> predictor =
      std::move(created).value();
  predictor->SetTraining(false);
  std::printf("users=%zu, test pairs=%zu\n", dataset.num_users,
              split.test_pairs.size());

  // Cold plan build: the one-time all-user encode a serving process pays at
  // warm-up or reload, never per batch.
  Stopwatch build_timer;
  predictor->WarmInferencePlan();
  double build_ms = build_timer.ElapsedMillis();
  std::printf("plan build (all-user encode): %.3f ms\n\n", build_ms);

  const std::vector<int> batch_sizes = {16, 64, 256};
  std::vector<Row> rows;
  std::printf("%7s %12s %14s %9s\n", "batch", "tape_ms", "compiled_ms",
              "speedup");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (int batch : batch_sizes) {
    std::vector<data::TrustPair> pairs;
    for (int i = 0; i < batch; ++i) {
      pairs.push_back(split.test_pairs[static_cast<size_t>(i) %
                                       split.test_pairs.size()]);
    }

    // Parity gate: the two paths must agree bit-for-bit before any timing
    // is worth reporting.
    std::vector<float> tape = TapeProbabilities(predictor.get(), pairs);
    std::vector<float> compiled = predictor->PredictProbabilities(pairs);
    for (size_t i = 0; i < pairs.size(); ++i) {
      AHNTP_CHECK(tape[i] == compiled[i])
          << "parity violation at pair " << i << ": tape=" << tape[i]
          << " compiled=" << compiled[i];
    }

    Row row;
    row.batch = batch;
    std::vector<double> tape_ms, compiled_ms;
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)TapeProbabilities(predictor.get(), pairs);
      tape_ms.push_back(t.ElapsedMillis());
    }
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)predictor->PredictProbabilities(pairs);
      compiled_ms.push_back(t.ElapsedMillis());
    }
    row.tape_ms = MedianMs(tape_ms);
    row.compiled_ms = MedianMs(compiled_ms);
    row.speedup = row.compiled_ms > 0.0 ? row.tape_ms / row.compiled_ms : 0.0;
    rows.push_back(row);
    std::printf("%7d %12.3f %14.3f %8.1fx\n", row.batch, row.tape_ms,
                row.compiled_ms, row.speedup);
    std::fflush(stdout);
  }

  // Sharded plan: per-shard-count build cost (encode + spill) and scoring
  // latency through the bounded-LRU fault path, parity-gated against the
  // monolithic plan (same weights, so bit-identical scores are required).
  const std::vector<int64_t> shard_counts =
      flags.GetIntList("shards", {1, 2, 4});
  const std::string spill_dir = "bench_inference_spill";
  const int shard_batch = 64;
  std::vector<data::TrustPair> shard_pairs;
  for (int i = 0; i < shard_batch; ++i) {
    shard_pairs.push_back(
        split.test_pairs[static_cast<size_t>(i) % split.test_pairs.size()]);
  }
  std::vector<float> monolithic = predictor->PredictProbabilities(shard_pairs);
  std::vector<ShardRow> shard_rows;
  std::printf("\n%7s %17s %13s\n", "shards", "plan_build_ms", "sharded_ms");
  std::printf("%s\n", std::string(40, '-').c_str());
  for (int64_t shards : shard_counts) {
    models::ShardedPlanOptions sharded;
    sharded.num_shards = static_cast<int>(shards);
    sharded.spill_dir = spill_dir;
    predictor->EnableShardedInference(sharded);
    ShardRow srow;
    srow.shards = static_cast<int>(shards);
    Stopwatch shard_build_timer;
    predictor->WarmInferencePlan();
    srow.plan_build_ms = shard_build_timer.ElapsedMillis();

    std::vector<float> sharded_probs =
        predictor->PredictProbabilities(shard_pairs);
    for (size_t i = 0; i < shard_pairs.size(); ++i) {
      AHNTP_CHECK(monolithic[i] == sharded_probs[i])
          << "sharded parity violation at pair " << i << " shards=" << shards;
    }

    std::vector<double> sharded_ms;
    for (int it = 0; it < iters; ++it) {
      Stopwatch t;
      (void)predictor->PredictProbabilities(shard_pairs);
      sharded_ms.push_back(t.ElapsedMillis());
    }
    srow.sharded_ms = MedianMs(sharded_ms);
    shard_rows.push_back(srow);
    std::printf("%7d %17.3f %13.3f\n", srow.shards, srow.plan_build_ms,
                srow.sharded_ms);
    std::fflush(stdout);
  }
  predictor->DisableShardedInference();
  std::filesystem::remove_all(spill_dir);

  std::string json =
      "{\n  \"bench\": \"inference\",\n  \"plan_build_ms\": " +
      StrFormat("%.4f", build_ms) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json += StrFormat(
        "    {\"batch\": %d, \"tape_ms\": %.4f, \"compiled_ms\": %.4f, "
        "\"speedup\": %.2f}%s\n",
        row.batch, row.tape_ms, row.compiled_ms, row.speedup,
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ],\n  \"shards\": [\n";
  for (size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardRow& srow = shard_rows[i];
    json += StrFormat(
        "    {\"shards\": %d, \"plan_build_ms\": %.4f, \"sharded_ms\": "
        "%.4f}%s\n",
        srow.shards, srow.plan_build_ms, srow.sharded_ms,
        i + 1 < shard_rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_inference.json", json));
  std::printf("\nwrote BENCH_inference.json (%zu rows)\n", rows.size());
  std::printf(
      "Expected shape: the tape path re-encodes every user per batch, so\n"
      "its latency is flat in batch size and dominated by the encode; the\n"
      "compiled path reads cached embeddings and scales with the batch\n"
      "alone, giving its largest speedups on small batches.\n");
  return 0;
}
