// Related-work category comparison (paper Section II taxonomy, not a table
// in the paper): propagation-based methods (path heuristics), matrix-based
// methods (trustor/trustee factorization), and GNN/hypergraph methods, all
// under the shared protocol. Reproduces the motivation for the paper's
// category ordering: propagation < matrix < graph < hypergraph.
//
//   ./build/bench/bench_related_work [--scale=0.06] [--epochs=300]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  bench::PrintBanner("Related work",
                     "propagation vs matrix vs (hyper)graph categories",
                     options);

  struct Entry {
    const char* category;
    const char* model;
  };
  const Entry entries[] = {
      {"propagation", "CommonNeighbors"},
      {"propagation", "Jaccard"},
      {"propagation", "AdamicAdar"},
      {"propagation", "Katz"},
      {"propagation", "Propagation"},
      {"matrix", "MF"},
      {"graph-nn", "SGC"},
      {"graph-nn", "Guardian"},
      {"hypergraph", "HGNN+"},
      {"hypergraph", "AHNTP"},
  };

  for (const auto& named : bench::BuildDatasets(options)) {
    std::printf("\n### %s\n", named.name.c_str());
    std::printf("%-12s %-16s | %9s | %9s | %9s\n", "category", "model", "acc",
                "f1", "auc");
    std::printf("%s\n", std::string(64, '-').c_str());
    for (const Entry& entry : entries) {
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = entry.model;
      core::ExperimentResult result =
          bench::MustRunAveraged(named.dataset, config, options);
      std::printf("%-12s %-16s | %8.2f%% | %8.2f%% | %9.4f\n", entry.category,
                  entry.model, result.test.accuracy * 100.0,
                  result.test.f1 * 100.0, result.test.auc);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper Section II): learned structural models beat\n"
      "pure path heuristics and feature-free factorization; hypergraph\n"
      "models top the learned family.\n");
  return 0;
}
