// Serving-path micro-benchmark: offered-load sweep against the online
// inference substrate (src/serve). For each execution-substrate thread
// count and each burst size, submits a closed-loop burst to a
// TrustServer fronting a trained-architecture AHNTP predictor and
// reports p50/p99 response latency and the rejection rate produced by
// queue backpressure. Emits a `BENCH_serve_load.json` result file (via
// the atomic writer) alongside the usual BENCH_META line; pass
// --metrics for a metrics sidecar with the serve.* counters.
//
//   ./build/bench/bench_serve_load [--scale=0.03] [--serve_queue_capacity=128]

#include <algorithm>
#include <future>
#include <vector>

#include "bench_util.h"
#include "common/fileio.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/split.h"
#include "serve/backend.h"
#include "serve/server.h"

namespace {

using namespace ahntp;

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(
                                             sorted_ms.size() - 1));
  return sorted_ms[index];
}

struct LoadRow {
  int threads = 0;
  int offered = 0;
  int served = 0;
  int rejected = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rejection_rate = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  size_t capacity = static_cast<size_t>(
      flags.GetInt("serve_queue_capacity", 128));
  size_t batch = static_cast<size_t>(flags.GetInt("serve_batch", 16));
  bench::PrintBanner("serve_load",
                     "serving latency / rejection vs offered load", options);

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(
          data::GeneratorConfig::CiaoLike(options.scale))
          .Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto graph_result = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK_OK(graph_result.status());
  graph::Digraph graph = std::move(graph_result).value();
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &graph;
  inputs.dataset = &dataset;
  inputs.hidden_dims = options.dims;
  serve::ModelBackend::Factory factory = [inputs, &options]() mutable {
    Rng rng(options.seed);
    inputs.rng = &rng;
    auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    AHNTP_CHECK_OK(created.status());
    return std::move(created).value();
  };

  const std::vector<int> thread_counts = {1, 2, 8};
  const std::vector<int> bursts = {32, 128, 512};
  std::vector<LoadRow> rows;

  std::printf("%7s %8s %8s %9s %10s %10s %10s\n", "threads", "offered",
              "served", "rejected", "rej_rate", "p50_ms", "p99_ms");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (int threads : thread_counts) {
    SetNumThreads(threads);
    serve::ModelBackend primary(factory, factory());
    for (int offered : bursts) {
      serve::ServeOptions serve_options;
      serve_options.queue_capacity = capacity;
      serve_options.max_batch_size = batch;
      serve::TrustServer server(serve_options, &primary, nullptr);

      std::vector<std::future<serve::TrustResponse>> futures;
      for (int i = 0; i < offered; ++i) {
        const data::TrustPair& pair =
            split.test_pairs[static_cast<size_t>(i) %
                             split.test_pairs.size()];
        serve::TrustQuery query;
        query.src = pair.src;
        query.dst = pair.dst;
        futures.push_back(server.Submit(query));
      }
      server.Start();

      LoadRow row;
      row.threads = threads;
      row.offered = offered;
      std::vector<double> latencies;
      for (auto& f : futures) {
        serve::TrustResponse response = f.get();
        if (response.status.ok()) {
          ++row.served;
          latencies.push_back(response.latency_ms);
        } else {
          AHNTP_CHECK(response.status.code() ==
                      StatusCode::kResourceExhausted)
              << response.status.ToString();
          ++row.rejected;
        }
      }
      server.Shutdown();
      row.p50_ms = Percentile(latencies, 0.5);
      row.p99_ms = Percentile(latencies, 0.99);
      row.rejection_rate =
          static_cast<double>(row.rejected) / static_cast<double>(offered);
      rows.push_back(row);
      std::printf("%7d %8d %8d %9d %9.1f%% %10.3f %10.3f\n", row.threads,
                  row.offered, row.served, row.rejected,
                  row.rejection_rate * 100.0, row.p50_ms, row.p99_ms);
      std::fflush(stdout);
    }
  }
  SetNumThreads(0);

  std::string json = "{\n  \"bench\": \"serve_load\",\n  \"queue_capacity\": " +
                     std::to_string(capacity) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadRow& row = rows[i];
    json += StrFormat(
        "    {\"threads\": %d, \"offered\": %d, \"served\": %d, "
        "\"rejected\": %d, \"rejection_rate\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f}%s\n",
        row.threads, row.offered, row.served, row.rejected,
        row.rejection_rate, row.p50_ms, row.p99_ms,
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_serve_load.json", json));
  std::printf("\nwrote BENCH_serve_load.json (%zu rows)\n", rows.size());
  std::printf(
      "Expected shape: rejection rate is 0 while offered <= queue capacity\n"
      "(%zu) and grows with the overflow beyond it; p50/p99 reflect batch\n"
      "position in the closed-loop burst, so deeper bursts stretch p99.\n",
      capacity);
  return 0;
}
