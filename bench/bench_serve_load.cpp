// Serving-path overload benchmark: a multi-tenant lane mix at 4x offered
// load against the online inference substrate (src/serve). Per execution
// thread count, submits `--serve_waves` closed-loop waves of a steady
// strict tenant, two bursty degraded-eligible tenants, and an adversarial
// hot-key best-effort tenant, with priority admission (strict
// reservation), request coalescing, and a generation-keyed score cache
// shared across the waves. Reports per-lane offered/admitted/shed rows
// with p50/p99 latency plus a per-lane FNV-1a digest over (status code,
// degraded/cached/coalesced flags, score bits) in submission order — the
// digest must be bit-identical at any thread count, with and without an
// AHNTP_FAULTS spec, because wall-clock never enters it.
//
// Emits `BENCH_serve_load.json` (schema_version 2, one row per
// (threads, lane)) via the atomic writer alongside the usual BENCH_META
// line; pass --metrics for a serve.* counter sidecar.
//
//   ./build/bench/bench_serve_load [--scale=0.03]
//       [--serve_queue_capacity=128] [--strict_reserve=32]
//       [--serve_waves=2] [--serve_load_multiplier=4]
//       [--fault_spec='serve.infer@~0.75' --fault_seed=42]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/fileio.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/split.h"
#include "serve/admission.h"
#include "serve/backend.h"
#include "serve/score_cache.h"
#include "serve/server.h"

namespace {

using namespace ahntp;

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(
                                             sorted_ms.size() - 1));
  return sorted_ms[index];
}

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvByte(uint64_t h, uint8_t byte) { return (h ^ byte) * kFnvPrime; }

uint64_t FnvU32(uint64_t h, uint32_t word) {
  for (int shift = 0; shift < 32; shift += 8) {
    h = FnvByte(h, static_cast<uint8_t>(word >> shift));
  }
  return h;
}

/// Per-(threads, lane) accounting. Latency percentiles are reported but
/// excluded from the digest, which folds only deterministic outcome bits.
struct LaneRow {
  int threads = 0;
  serve::Lane lane = serve::Lane::kStrict;
  int offered = 0;
  int admitted = 0;
  int ok = 0;
  int degraded = 0;
  int rejected = 0;
  int expired = 0;
  int failed = 0;
  int cached = 0;
  int coalesced = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
  uint64_t digest = kFnvOffset;
  std::vector<double> latencies;

  void Absorb(const serve::TrustResponse& response) {
    ++offered;
    if (response.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else {
      ++admitted;
      latencies.push_back(response.latency_ms);
      if (response.status.ok()) {
        response.degraded ? ++degraded : ++ok;
      } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
        ++expired;
      } else {
        ++failed;
      }
    }
    if (response.cached) ++cached;
    if (response.coalesced) ++coalesced;
    digest = FnvByte(digest, static_cast<uint8_t>(response.status.code()));
    digest = FnvByte(digest, static_cast<uint8_t>((response.degraded << 2) |
                                                  (response.cached << 1) |
                                                  response.coalesced));
    uint32_t bits = 0;
    if (response.status.ok()) {
      static_assert(sizeof(bits) == sizeof(response.score));
      std::memcpy(&bits, &response.score, sizeof(bits));
    }
    digest = FnvU32(digest, bits);
  }

  void Finish() {
    p50_ms = Percentile(latencies, 0.5);
    p99_ms = Percentile(latencies, 0.99);
    shed_rate = offered > 0
                    ? static_cast<double>(rejected) / offered
                    : 0.0;
  }
};

/// Tenant mix by submission index: one steady strict tenant, two bursty
/// degraded-eligible tenants, one hot-key best-effort tenant.
serve::Lane LaneFor(int i) {
  switch (i % 4) {
    case 0: return serve::Lane::kStrict;
    case 3: return serve::Lane::kBesteffort;
    default: return serve::Lane::kDegradedEligible;
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  const size_t capacity = static_cast<size_t>(
      flags.GetInt("serve_queue_capacity", 128));
  const size_t batch = static_cast<size_t>(flags.GetInt("serve_batch", 16));
  const size_t strict_reserve = static_cast<size_t>(
      flags.GetInt("strict_reserve", static_cast<int64_t>(capacity) / 4));
  const int waves = static_cast<int>(flags.GetInt("serve_waves", 2));
  const int multiplier =
      static_cast<int>(flags.GetInt("serve_load_multiplier", 4));
  const int per_wave =
      static_cast<int>(capacity) * multiplier / std::max(waves, 1);
  const uint64_t fault_seed =
      static_cast<uint64_t>(flags.GetInt("fault_seed", 0));
  // The active spec, whether it arrived via --fault_spec or AHNTP_FAULTS:
  // each thread-count section re-installs it so per-site hit counters
  // restart and every section replays the identical fault stream.
  std::string fault_spec = flags.GetString("fault_spec", "");
  if (fault_spec.empty()) {
    const char* env = std::getenv("AHNTP_FAULTS");
    if (env != nullptr) fault_spec = env;
  }
  bench::PrintBanner(
      "serve_load",
      "per-lane latency / shed under a 4x multi-tenant overload mix",
      options);

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(
          data::GeneratorConfig::CiaoLike(options.scale))
          .Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto graph_result = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK_OK(graph_result.status());
  graph::Digraph graph = std::move(graph_result).value();
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &graph;
  inputs.dataset = &dataset;
  inputs.hidden_dims = options.dims;
  serve::ModelBackend::Factory factory = [inputs, &options]() mutable {
    Rng rng(options.seed);
    inputs.rng = &rng;
    auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    AHNTP_CHECK_OK(created.status());
    return std::move(created).value();
  };

  // The adversarial tenant hammers a handful of hot keys; everyone else
  // cycles the held-out pairs. The mapping depends only on the submission
  // index, so wave 2 re-offers wave 1's pairs and the shared score cache
  // absorbs the repeats.
  const size_t hot_keys = 8;
  auto pair_for = [&](int i) -> const data::TrustPair& {
    if (LaneFor(i) == serve::Lane::kBesteffort) {
      return split.test_pairs[(static_cast<size_t>(i) / 4) % hot_keys];
    }
    return split.test_pairs[static_cast<size_t>(i) % split.test_pairs.size()];
  };

  const std::vector<int> thread_counts = {1, 2, 8};
  std::vector<LaneRow> rows;

  std::printf("%7s %9s %8s %9s %9s %9s %9s %10s %10s\n", "threads", "lane",
              "offered", "admitted", "rejected", "cached", "coalesced",
              "p50_ms", "p99_ms");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (int threads : thread_counts) {
    SetNumThreads(threads);
    if (!fault_spec.empty()) {
      fault::SetSeed(fault_seed);
      AHNTP_CHECK_OK(fault::EnableFromSpec(fault_spec));
    }
    serve::ModelBackend primary(factory, factory());
    serve::HeuristicBackend fallback(&graph, models::Heuristic::kJaccard);
    serve::ScoreCache cache(capacity * 4);

    LaneRow section[serve::kNumLanes];
    for (int lane = 0; lane < serve::kNumLanes; ++lane) {
      section[lane].threads = threads;
      section[lane].lane = static_cast<serve::Lane>(lane);
    }

    for (int wave = 0; wave < waves; ++wave) {
      serve::ServeOptions serve_options;
      serve_options.queue_capacity = capacity;
      serve_options.max_batch_size = batch;
      serve_options.retry.max_attempts = 2;
      serve_options.retry.seed = fault_seed;
      serve_options.sleep_on_backoff = false;
      serve_options.admission.strict_reserve = strict_reserve;
      serve_options.coalesce = true;
      serve_options.shared_score_cache = &cache;
      serve::TrustServer server(serve_options, &primary, &fallback);

      std::vector<std::future<serve::TrustResponse>> futures;
      futures.reserve(static_cast<size_t>(per_wave));
      for (int i = 0; i < per_wave; ++i) {
        const data::TrustPair& pair = pair_for(i);
        serve::TrustQuery query;
        query.src = pair.src;
        query.dst = pair.dst;
        query.lane = LaneFor(i);
        futures.push_back(server.Submit(query));
      }
      server.Start();
      for (int i = 0; i < per_wave; ++i) {
        section[static_cast<int>(LaneFor(i))].Absorb(futures[
            static_cast<size_t>(i)].get());
      }
      server.Shutdown();
    }

    for (int lane = 0; lane < serve::kNumLanes; ++lane) {
      LaneRow& row = section[lane];
      row.Finish();
      rows.push_back(row);
      std::printf("%7d %9s %8d %9d %9d %9d %9d %10.3f %10.3f\n", row.threads,
                  serve::LaneName(row.lane), row.offered, row.admitted,
                  row.rejected, row.cached, row.coalesced, row.p50_ms,
                  row.p99_ms);
      std::fflush(stdout);
    }
  }
  SetNumThreads(0);
  if (!fault_spec.empty()) fault::Disable();

  // Deterministic digest lines for scripts/check_serve_load.sh: one per
  // (threads, lane), wall-clock excluded, so the digest for a lane must
  // match across thread counts byte for byte.
  for (const LaneRow& row : rows) {
    std::printf("SERVE_LANE_DIGEST threads=%d lane=%s digest=%016llx\n",
                row.threads, serve::LaneName(row.lane),
                static_cast<unsigned long long>(row.digest));
  }

  // No-rejection-cliff acceptance: the strict lane must stay under 5%
  // shed even at 4x offered load, because the reservation shields it.
  int violations = 0;
  for (const LaneRow& row : rows) {
    if (row.lane == serve::Lane::kStrict && row.shed_rate > 0.05) {
      std::fprintf(stderr,
                   "FAIL: strict lane shed %.1f%% at threads=%d "
                   "(reservation must hold it under 5%%)\n",
                   row.shed_rate * 100.0, row.threads);
      ++violations;
    }
  }

  std::string json = StrFormat(
      "{\n  \"bench\": \"serve_load\",\n  \"schema_version\": 2,\n"
      "  \"queue_capacity\": %zu,\n  \"strict_reserve\": %zu,\n"
      "  \"waves\": %d,\n  \"load_multiplier\": %d,\n  \"rows\": [\n",
      capacity, strict_reserve, waves, multiplier);
  for (size_t i = 0; i < rows.size(); ++i) {
    const LaneRow& row = rows[i];
    json += StrFormat(
        "    {\"threads\": %d, \"lane\": \"%s\", \"offered\": %d, "
        "\"admitted\": %d, \"ok\": %d, \"degraded\": %d, \"rejected\": %d, "
        "\"expired\": %d, \"failed\": %d, \"cached\": %d, "
        "\"coalesced\": %d, \"shed_rate\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"digest\": \"%016llx\"}%s\n",
        row.threads, serve::LaneName(row.lane), row.offered, row.admitted,
        row.ok, row.degraded, row.rejected, row.expired, row.failed,
        row.cached, row.coalesced, row.shed_rate, row.p50_ms, row.p99_ms,
        static_cast<unsigned long long>(row.digest),
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_serve_load.json", json));
  std::printf("\nwrote BENCH_serve_load.json (%zu rows)\n", rows.size());
  std::printf(
      "Expected shape: best-effort sheds first and coalesces its hot keys,\n"
      "degraded-eligible rides the heuristic fallback under pressure, and\n"
      "the strict reservation (%zu of %zu slots) keeps strict shed at 0%%\n"
      "even at %dx offered load; wave 2 repeats wave 1's pairs, so the\n"
      "shared score cache absorbs most of it.\n",
      strict_reserve, capacity, multiplier);
  return violations == 0 ? 0 : 1;
}
