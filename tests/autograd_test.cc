#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adaptive_conv.h"
#include "hypergraph/hypergraph.h"
#include "nn/losses.h"
#include "test_util.h"

namespace ahntp::autograd {
namespace {

using ahntp::testing::ExpectGradientsClose;
using tensor::CsrMatrix;
using tensor::Matrix;

Variable RandParam(size_t rows, size_t cols, Rng* rng, float scale = 1.0f) {
  return Parameter(Matrix::Randn(rows, cols, rng, 0.0f, scale));
}

TEST(VariableTest, LeafHasNoBackward) {
  Variable v = Parameter(Matrix::FromRows({{1, 2}}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 2u);
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable v = Parameter(Matrix::FromRows({{1, 2}}));
  EXPECT_DEATH(v.Backward(), "scalar");
}

TEST(VariableTest, SimpleChainGradient) {
  Variable x = Parameter(Matrix::FromRows({{3.0f}}));
  Variable y = Scale(x, 2.0f);         // 2x
  Variable z = Mul(y, y);              // 4x^2
  Variable loss = ReduceSum(z);
  loss.Backward();
  EXPECT_NEAR(x.grad().At(0, 0), 8.0f * 3.0f, 1e-4f);  // d/dx 4x^2 = 8x
}

TEST(VariableTest, GradAccumulatesAcrossSharedSubexpressions) {
  Variable x = Parameter(Matrix::FromRows({{2.0f}}));
  Variable sum = Add(x, x);  // 2x
  Variable loss = ReduceSum(sum);
  loss.Backward();
  EXPECT_NEAR(x.grad().At(0, 0), 2.0f, 1e-5f);
}

TEST(VariableTest, ZeroGradResets) {
  Variable x = Parameter(Matrix::FromRows({{1.0f}}));
  ReduceSum(Scale(x, 3.0f)).Backward();
  EXPECT_NEAR(x.grad().At(0, 0), 3.0f, 1e-5f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad().At(0, 0), 0.0f);
  ReduceSum(Scale(x, 3.0f)).Backward();
  EXPECT_NEAR(x.grad().At(0, 0), 3.0f, 1e-5f);  // not 6: fresh accumulation
}

TEST(VariableTest, ConstantReceivesNoBackwardWork) {
  Variable c = Constant(Matrix::FromRows({{5.0f}}));
  Variable x = Parameter(Matrix::FromRows({{2.0f}}));
  Variable loss = ReduceSum(Mul(c, x));
  loss.Backward();
  EXPECT_NEAR(x.grad().At(0, 0), 5.0f, 1e-5f);
  EXPECT_FALSE(c.requires_grad());
}

// ---------------------------------------------------------------------------
// Per-op gradient checks vs central finite differences.
// ---------------------------------------------------------------------------

TEST(GradCheck, MatMul) {
  Rng rng(1);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(MatMul(p[0], p[1]));
      },
      {RandParam(3, 4, &rng), RandParam(4, 2, &rng)});
}

TEST(GradCheck, AddSubMul) {
  Rng rng(2);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(Mul(Add(p[0], p[1]), Sub(p[0], p[1])));
      },
      {RandParam(3, 3, &rng), RandParam(3, 3, &rng)});
}

TEST(GradCheck, MulConstAndScale) {
  Rng rng(3);
  Matrix mask = Matrix::FromRows({{1, 0, 2}, {0, 1, 0}});
  ExpectGradientsClose(
      [mask](const std::vector<Variable>& p) {
        return ReduceSum(Scale(MulConst(p[0], mask), 1.5f));
      },
      {RandParam(2, 3, &rng)});
}

TEST(GradCheck, AddRowBroadcast) {
  Rng rng(4);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(Mul(AddRowBroadcast(p[0], p[1]),
                             AddRowBroadcast(p[0], p[1])));
      },
      {RandParam(4, 3, &rng), RandParam(1, 3, &rng)});
}

TEST(GradCheck, MulColBroadcast) {
  Rng rng(5);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(MulColBroadcast(p[0], p[1]));
      },
      {RandParam(4, 3, &rng), RandParam(4, 1, &rng)});
}

TEST(GradCheck, SpMM) {
  Rng rng(6);
  CsrMatrix s = CsrMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0f}, {1, 0, -1.0f}, {1, 3, 0.5f}, {2, 2, 1.0f}});
  ExpectGradientsClose(
      [s](const std::vector<Variable>& p) {
        return ReduceSum(Mul(SpMMConst(s, p[0]), SpMMConst(s, p[0])));
      },
      {RandParam(4, 2, &rng)});
}

TEST(GradCheck, SpMMTransposed) {
  Rng rng(7);
  CsrMatrix s = CsrMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0f}, {1, 0, -1.0f}, {2, 3, 0.5f}});
  ExpectGradientsClose(
      [s](const std::vector<Variable>& p) {
        return ReduceSum(SpMMTransposedConst(s, p[0]));
      },
      {RandParam(3, 2, &rng)});
}

TEST(GradCheck, ReluAndLeakyRelu) {
  Rng rng(8);
  // Keep values away from the kink for numeric stability.
  Matrix base = Matrix::Randn(4, 4, &rng);
  for (size_t i = 0; i < base.size(); ++i) {
    if (std::fabs(base.data()[i]) < 0.05f) base.data()[i] = 0.2f;
  }
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(Add(Relu(p[0]), LeakyRelu(p[0], 0.1f)));
      },
      {Parameter(base)});
}

TEST(GradCheck, SigmoidTanhExp) {
  Rng rng(9);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(Add(Sigmoid(p[0]), Add(Tanh(p[0]), Exp(p[0]))));
      },
      {RandParam(3, 3, &rng, 0.5f)});
}

TEST(GradCheck, LogOfPositive) {
  Rng rng(10);
  Matrix positive = Matrix::RandUniform(3, 3, &rng, 0.5f, 2.0f);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) { return ReduceSum(Log(p[0])); },
      {Parameter(positive)});
}

TEST(GradCheck, ClampInterior) {
  Rng rng(11);
  Matrix interior = Matrix::RandUniform(3, 3, &rng, -0.5f, 0.5f);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(Clamp(p[0], -1.0f, 1.0f));
      },
      {Parameter(interior)});
}

TEST(ClampTest, GradientZeroOutsideRange) {
  Variable x = Parameter(Matrix::FromRows({{5.0f, -5.0f, 0.2f}}));
  ReduceSum(Clamp(x, -1.0f, 1.0f)).Backward();
  EXPECT_EQ(x.grad().At(0, 0), 0.0f);
  EXPECT_EQ(x.grad().At(0, 1), 0.0f);
  EXPECT_EQ(x.grad().At(0, 2), 1.0f);
}

TEST(GradCheck, ConcatCols) {
  Rng rng(12);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        Variable cat = ConcatCols({p[0], p[1]});
        return ReduceSum(Mul(cat, cat));
      },
      {RandParam(3, 2, &rng), RandParam(3, 4, &rng)});
}

TEST(GradCheck, GatherRows) {
  Rng rng(13);
  std::vector<int> idx = {2, 0, 2, 1};
  ExpectGradientsClose(
      [idx](const std::vector<Variable>& p) {
        Variable g = GatherRows(p[0], idx);
        return ReduceSum(Mul(g, g));
      },
      {RandParam(3, 3, &rng)});
}

TEST(GradCheck, SegmentSumAndMean) {
  Rng rng(14);
  std::vector<int> seg = {0, 1, 0, 2, 1};
  ExpectGradientsClose(
      [seg](const std::vector<Variable>& p) {
        Variable s = SegmentSum(p[0], seg, 3);
        Variable m = SegmentMean(p[0], seg, 3);
        return ReduceSum(Mul(s, m));
      },
      {RandParam(5, 2, &rng)});
}

TEST(GradCheck, SegmentSoftmax) {
  Rng rng(15);
  std::vector<int> seg = {0, 0, 1, 1, 1, 2};
  ExpectGradientsClose(
      [seg](const std::vector<Variable>& p) {
        Variable alpha = SegmentSoftmax(p[0], seg, 3);
        // Weighted sum makes the loss depend non-trivially on alpha.
        Matrix weights(6, 1);
        for (size_t i = 0; i < 6; ++i) weights.At(i, 0) = static_cast<float>(i);
        return ReduceSum(MulConst(alpha, weights));
      },
      {RandParam(6, 1, &rng)});
}

TEST(SegmentSoftmaxTest, SumsToOnePerSegment) {
  Variable x = Parameter(Matrix::FromRows({{1}, {5}, {-2}, {0}, {3}}));
  std::vector<int> seg = {0, 0, 1, 1, 1};
  Variable alpha = SegmentSoftmax(x, seg, 2);
  EXPECT_NEAR(alpha.value().At(0, 0) + alpha.value().At(1, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(alpha.value().At(2, 0) + alpha.value().At(3, 0) +
                  alpha.value().At(4, 0),
              1.0f, 1e-5f);
}

TEST(GradCheck, RowL2Normalize) {
  Rng rng(16);
  Matrix base = Matrix::Randn(3, 4, &rng);
  base += Matrix(3, 4, 0.3f);  // keep norms clearly nonzero
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        Variable n = RowL2Normalize(p[0]);
        Matrix w(3, 4);
        for (size_t i = 0; i < w.size(); ++i) {
          w.data()[i] = static_cast<float>(i % 5) - 2.0f;
        }
        return ReduceSum(MulConst(n, w));
      },
      {Parameter(base)});
}

TEST(RowL2NormalizeTest, ProducesUnitRows) {
  Variable x = Parameter(Matrix::FromRows({{3, 4}, {1, 0}}));
  Variable n = RowL2Normalize(x);
  EXPECT_NEAR(n.value().At(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(n.value().At(0, 1), 0.8f, 1e-5f);
  EXPECT_NEAR(n.value().At(1, 0), 1.0f, 1e-5f);
}

TEST(GradCheck, RowwiseDotAndCosine) {
  Rng rng(17);
  Matrix a = Matrix::Randn(4, 3, &rng);
  Matrix b = Matrix::Randn(4, 3, &rng);
  a += Matrix(4, 3, 0.5f);
  b += Matrix(4, 3, 0.5f);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceSum(Add(RowwiseDot(p[0], p[1]),
                             PairwiseCosine(p[0], p[1])));
      },
      {Parameter(a), Parameter(b)});
}

TEST(PairwiseCosineTest, KnownValues) {
  Variable a = Parameter(Matrix::FromRows({{1, 0}, {1, 1}}));
  Variable b = Parameter(Matrix::FromRows({{0, 1}, {1, 1}}));
  Variable cs = PairwiseCosine(a, b);
  EXPECT_NEAR(cs.value().At(0, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(cs.value().At(1, 0), 1.0f, 1e-5f);
}

TEST(GradCheck, RowSoftmax) {
  Rng rng(18);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        Variable s = RowSoftmax(p[0]);
        Matrix w(3, 4);
        for (size_t i = 0; i < w.size(); ++i) {
          w.data()[i] = static_cast<float>((i * 7) % 3);
        }
        return ReduceSum(MulConst(s, w));
      },
      {RandParam(3, 4, &rng)});
}

TEST(RowSoftmaxTest, RowsSumToOne) {
  Rng rng(19);
  Variable x = RandParam(5, 7, &rng, 3.0f);
  Variable s = RowSoftmax(x);
  for (size_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 7; ++c) sum += s.value().At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(GradCheck, ReduceMean) {
  Rng rng(20);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return ReduceMean(Mul(p[0], p[0]));
      },
      {RandParam(4, 5, &rng)});
}

TEST(GradCheck, AddScalar) {
  Rng rng(21);
  ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        Variable shifted = AddScalar(p[0], 2.0f);
        return ReduceSum(Mul(shifted, shifted));
      },
      {RandParam(2, 3, &rng)});
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(22);
  Variable x = RandParam(4, 4, &rng);
  Variable y = Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

TEST(DropoutTest, TrainingScalesSurvivors) {
  Rng rng(23);
  Variable x = Parameter(Matrix(100, 100, 1.0f));
  Variable y = Dropout(x, 0.5f, &rng, /*training=*/true);
  // Survivors are scaled by 1/(1-p)=2; expectation preserved.
  size_t zeros = 0;
  for (size_t i = 0; i < y.value().size(); ++i) {
    float v = y.value().data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-5f);
    if (v == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.05f);
}

TEST(DropoutTest, ZeroProbabilityIsIdentity) {
  Rng rng(24);
  Variable x = RandParam(3, 3, &rng);
  Variable y = Dropout(x, 0.0f, &rng, /*training=*/true);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

// Composite: a 2-layer MLP-like graph, all gradients checked at once.
TEST(GradCheck, CompositeTwoLayerNetwork) {
  Rng rng(25);
  Matrix x = Matrix::Randn(5, 4, &rng);
  ExpectGradientsClose(
      [x](const std::vector<Variable>& p) {
        Variable h = Relu(AddRowBroadcast(MatMul(Constant(x), p[0]), p[1]));
        Variable out = Sigmoid(MatMul(h, p[2]));
        return ReduceMean(Mul(out, out));
      },
      {RandParam(4, 3, &rng), RandParam(1, 3, &rng), RandParam(3, 1, &rng)});
}

// End-to-end FD check through the adaptive hypergraph convolution's
// attention path (Eqs. 14-16: LeakyReLU-scored segment softmax over
// incidence pairs, trainable per-edge weights, multi-head). The conv's
// Parameters() share state with its internals, so perturbing them in
// ExpectGradientsClose drives fresh Forward() passes.
TEST(GradCheck, AdaptiveHypergraphConvAttention) {
  Rng rng(57);
  hypergraph::Hypergraph hg(5);
  ASSERT_TRUE(hg.AddEdge({0, 1, 2}).ok());
  ASSERT_TRUE(hg.AddEdge({1, 3}).ok());
  ASSERT_TRUE(hg.AddEdge({0, 2, 3, 4}).ok());
  core::AdaptiveHypergraphConv conv(hg, /*in_features=*/3, /*out_features=*/4,
                                    &rng, /*use_attention=*/true,
                                    /*leaky_slope=*/0.2f, /*num_heads=*/2);
  Matrix x = Matrix::Randn(5, 3, &rng, 0.0f, 0.5f);
  // Random fixed readout weights break the symmetry of a plain sum, so
  // every output entry carries a distinct gradient direction.
  Matrix readout = Matrix::Randn(5, 4, &rng);
  ExpectGradientsClose(
      [&conv, x, readout](const std::vector<Variable>&) {
        return ReduceSum(MulConst(conv.Forward(Constant(x)), readout));
      },
      conv.Parameters(),
      // The path crosses LeakyReLU and ReLU kinks; a smaller FD step keeps
      // the two-sided evaluations on one side of each kink.
      /*epsilon=*/1e-3f);
}

// Supervised contrastive loss (Eq. 20) away from the default t=0.3, in
// both the sharp (t < default) and flat (t > default) regimes, with one
// anchor that has no positive pair (exercising the exclusion branch).
TEST(GradCheck, SupervisedContrastiveLossNonDefaultTemperature) {
  Rng rng(37);
  const std::vector<int> anchors = {0, 0, 0, 1, 1, 2};
  const std::vector<bool> positive = {true, false, true, false, true, false};
  for (float temperature : {0.07f, 1.5f}) {
    ExpectGradientsClose(
        [&anchors, &positive, temperature](const std::vector<Variable>& p) {
          return nn::SupervisedContrastiveLoss(p[0], anchors,
                                               /*num_anchors=*/3, positive,
                                               temperature);
        },
        {RandParam(6, 1, &rng, 0.25f)},
        // Sharper curvature at small t needs a smaller FD step.
        /*epsilon=*/1e-3f);
  }
}

}  // namespace
}  // namespace ahntp::autograd
