#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/csv.h"
#include "common/stopwatch.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace ahntp {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  AHNTP_ASSIGN_OR_RETURN(int half, HalfOf(x));
  AHNTP_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());
  EXPECT_FALSE(QuarterOf(7).ok());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = StrSplit("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ","), "x,y,z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("nospace"), "nospace");
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(ParseInt("123").value(), 123);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (size_t k : {0u, 3u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

// ---------------------------------------------------------------------------
// Csv
// ---------------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "x"}, {"2", "y"}};
  std::string path = ::testing::TempDir() + "/ahntp_csv_test.csv";
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsv("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, NoHeaderMode) {
  CsvTable table;
  table.rows = {{"1", "2"}};
  std::string path = ::testing::TempDir() + "/ahntp_csv_noheader.csv";
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto loaded = ReadCsv(path, ',', /*has_header=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->header.empty());
  ASSERT_EQ(loaded->rows.size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha=0.5", "--epochs=30",
                        "--verbose", "positional",  "--name=x"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(6, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("epochs", 0), 30);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "x");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, Lists) {
  const char* argv[] = {"prog", "--dims=256,128,64", "--alphas=0.4,0.8",
                        "--models=GAT,SGC"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.GetIntList("dims", {}),
            (std::vector<int64_t>{256, 128, 64}));
  EXPECT_EQ(flags.GetDoubleList("alphas", {}),
            (std::vector<double>{0.4, 0.8}));
  EXPECT_EQ(flags.GetStringList("models", {}),
            (std::vector<std::string>{"GAT", "SGC"}));
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

// The stopwatch must be monotonic (steady_clock): elapsed time never goes
// negative, not even across rapid repeated restarts or system clock
// adjustments (which a wall clock would be exposed to).
TEST(StopwatchTest, ElapsedNonNegativeUnderRepeatedRestarts) {
  Stopwatch sw;
  for (int i = 0; i < 1000; ++i) {
    sw.Restart();
    double s = sw.ElapsedSeconds();
    double ms = sw.ElapsedMillis();
    ASSERT_GE(s, 0.0) << "iteration " << i;
    ASSERT_GE(ms, 0.0) << "iteration " << i;
  }
}

TEST(StopwatchTest, ElapsedIsMonotone) {
  Stopwatch sw;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    double now = sw.ElapsedSeconds();
    ASSERT_GE(now, last) << "iteration " << i;
    last = now;
  }
}

}  // namespace
}  // namespace ahntp
