#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "data/features.h"
#include "graph/motifs.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"

namespace ahntp::data {
namespace {

GeneratorConfig TinyConfig() {
  GeneratorConfig config;
  config.name = "tiny";
  config.num_users = 120;
  config.num_items = 200;
  config.num_communities = 4;
  config.avg_trust_out_degree = 6.0;
  config.avg_purchases_per_user = 8.0;
  config.seed = 7;
  return config;
}

SocialDataset TinyDataset() {
  return SocialNetworkGenerator(TinyConfig()).Generate();
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(GeneratorTest, ProducesValidDataset) {
  SocialDataset ds = TinyDataset();
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.num_users, 120u);
  EXPECT_EQ(ds.num_items, 200u);
  EXPECT_EQ(ds.attributes.size(), 4u);  // hobby, school, city, age_band
  EXPECT_EQ(ds.communities.size(), 120u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SocialDataset a = TinyDataset();
  SocialDataset b = TinyDataset();
  ASSERT_EQ(a.trust_edges.size(), b.trust_edges.size());
  for (size_t i = 0; i < a.trust_edges.size(); ++i) {
    EXPECT_EQ(a.trust_edges[i].src, b.trust_edges[i].src);
    EXPECT_EQ(a.trust_edges[i].dst, b.trust_edges[i].dst);
  }
  ASSERT_EQ(a.purchases.size(), b.purchases.size());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config = TinyConfig();
  config.seed = 8;
  SocialDataset a = TinyDataset();
  SocialDataset b = SocialNetworkGenerator(config).Generate();
  size_t same = 0;
  size_t n = std::min(a.trust_edges.size(), b.trust_edges.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.trust_edges[i].src == b.trust_edges[i].src &&
        a.trust_edges[i].dst == b.trust_edges[i].dst) {
      ++same;
    }
  }
  EXPECT_LT(same, n / 2);
}

TEST(GeneratorTest, EdgeCountNearTarget) {
  SocialDataset ds = TinyDataset();
  double target = 120 * 6.0;
  EXPECT_NEAR(static_cast<double>(ds.trust_edges.size()), target,
              target * 0.05);
}

TEST(GeneratorTest, TrustIsHomophilous) {
  SocialDataset ds = TinyDataset();
  size_t intra = 0;
  for (const graph::Edge& e : ds.trust_edges) {
    if (ds.communities[static_cast<size_t>(e.src)] ==
        ds.communities[static_cast<size_t>(e.dst)]) {
      ++intra;
    }
  }
  double frac =
      static_cast<double>(intra) / static_cast<double>(ds.trust_edges.size());
  // Config plants 0.8 intra-community probability (closure reinforces it);
  // a uniform random graph over 4 communities would sit near 0.25.
  EXPECT_GT(frac, 0.6);
}

TEST(GeneratorTest, TrustGraphContainsTriangles) {
  SocialDataset ds = TinyDataset();
  auto g = ds.TrustGraph();
  ASSERT_TRUE(g.ok());
  // Triadic closure must generate motif instances (the MPR signal).
  auto motifs = graph::AllMotifAdjacencies(g->Adjacency());
  int64_t total = 0;
  for (const auto& m : motifs) total += graph::CountMotifInstances(m);
  EXPECT_GT(total, 20);
}

TEST(GeneratorTest, AttributesCorrelateWithCommunities) {
  SocialDataset ds = TinyDataset();
  // Check attribute 0 (hobby): same-community pairs should agree more often
  // than cross-community pairs.
  const auto& hobby = ds.attributes[0];
  size_t same_comm_agree = 0, same_comm_total = 0;
  size_t diff_comm_agree = 0, diff_comm_total = 0;
  for (size_t u = 0; u < ds.num_users; ++u) {
    for (size_t v = u + 1; v < ds.num_users; ++v) {
      bool same_comm = ds.communities[u] == ds.communities[v];
      bool agree = hobby[u] == hobby[v];
      if (same_comm) {
        ++same_comm_total;
        if (agree) ++same_comm_agree;
      } else {
        ++diff_comm_total;
        if (agree) ++diff_comm_agree;
      }
    }
  }
  double p_same = static_cast<double>(same_comm_agree) / same_comm_total;
  double p_diff = static_cast<double>(diff_comm_agree) / diff_comm_total;
  EXPECT_GT(p_same, p_diff + 0.2);
}

TEST(GeneratorTest, InfluencersExist) {
  SocialDataset ds = TinyDataset();
  auto g = ds.TrustGraph();
  ASSERT_TRUE(g.ok());
  size_t max_in = 0;
  for (size_t u = 0; u < ds.num_users; ++u) {
    max_in = std::max(max_in, g->InDegree(static_cast<int>(u)));
  }
  // Preferential attachment should create hubs well above the mean (~6).
  EXPECT_GT(max_in, 15u);
}

TEST(GeneratorTest, PresetsMatchTableThreeShape) {
  GeneratorConfig epinions = GeneratorConfig::EpinionsLike(1.0);
  EXPECT_EQ(epinions.num_users, 8935u);
  EXPECT_EQ(epinions.num_items, 21335u);
  EXPECT_NEAR(epinions.avg_trust_out_degree, 65948.0 / 8935.0, 1e-9);
  GeneratorConfig ciao = GeneratorConfig::CiaoLike(1.0);
  EXPECT_EQ(ciao.num_users, 4104u);
  EXPECT_EQ(ciao.num_items, 75071u);
  // Ciao has more trust per user and more purchases per user than Epinions.
  EXPECT_GT(ciao.avg_trust_out_degree, epinions.avg_trust_out_degree);
  EXPECT_GT(ciao.avg_purchases_per_user, epinions.avg_purchases_per_user);
}

TEST(GeneratorTest, ScaledPresetKeepsDegrees) {
  GeneratorConfig full = GeneratorConfig::EpinionsLike(1.0);
  GeneratorConfig eighth = GeneratorConfig::EpinionsLike(0.125);
  EXPECT_NEAR(static_cast<double>(eighth.num_users),
              static_cast<double>(full.num_users) / 8.0, 1.0);
  EXPECT_DOUBLE_EQ(eighth.avg_trust_out_degree, full.avg_trust_out_degree);
}

TEST(GeneratorTest, HandlesZeroItems) {
  GeneratorConfig config = TinyConfig();
  config.num_items = 0;
  config.avg_purchases_per_user = 0.0;
  SocialDataset ds = SocialNetworkGenerator(config).Generate();
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_TRUE(ds.purchases.empty());
  // Feature matrix still builds (behaviour/histogram features are zero).
  tensor::Matrix x = BuildFeatureMatrix(ds);
  EXPECT_EQ(x.rows(), ds.num_users);
}

TEST(GeneratorTest, MinimumViableSize) {
  GeneratorConfig config;
  config.num_users = 10;
  config.num_items = 5;
  config.num_communities = 2;
  config.avg_trust_out_degree = 2.0;
  config.avg_purchases_per_user = 2.0;
  config.seed = 1;
  SocialDataset ds = SocialNetworkGenerator(config).Generate();
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_GT(ds.trust_edges.size(), 4u);  // enough for MakeSplit
}

TEST(StatisticsTest, MatchesDataset) {
  SocialDataset ds = TinyDataset();
  DatasetStatistics stats = ComputeStatistics(ds);
  EXPECT_EQ(stats.num_users, ds.num_users);
  EXPECT_EQ(stats.num_trust_relations, ds.trust_edges.size());
  EXPECT_NEAR(stats.trust_density, ds.TrustDensity(), 1e-12);
  EXPECT_GT(stats.reciprocity, 0.1);  // reciprocation_prob = 0.3
  EXPECT_LT(stats.reciprocity, 0.8);
}

// ---------------------------------------------------------------------------
// Features
// ---------------------------------------------------------------------------

TEST(FeaturesTest, DimensionMatchesOptions) {
  SocialDataset ds = TinyDataset();
  FeatureOptions all;
  size_t expected = 0;
  for (int card : ds.attribute_cardinalities) {
    expected += static_cast<size_t>(card);
  }
  expected += 2 + static_cast<size_t>(ds.num_item_categories);
  EXPECT_EQ(FeatureDimension(ds, all), expected);
  tensor::Matrix x = BuildFeatureMatrix(ds, all);
  EXPECT_EQ(x.rows(), ds.num_users);
  EXPECT_EQ(x.cols(), expected);
}

TEST(FeaturesTest, OneHotRowsSumToAttributeCount) {
  SocialDataset ds = TinyDataset();
  FeatureOptions attrs_only;
  attrs_only.include_behavior = false;
  attrs_only.include_category_histogram = false;
  tensor::Matrix x = BuildFeatureMatrix(ds, attrs_only);
  for (size_t u = 0; u < 10; ++u) {
    float row_sum = 0.0f;
    for (size_t c = 0; c < x.cols(); ++c) row_sum += x.At(u, c);
    EXPECT_EQ(row_sum, 4.0f);  // one 1 per attribute column
  }
}

TEST(FeaturesTest, HistogramRowsNormalized) {
  SocialDataset ds = TinyDataset();
  FeatureOptions hist_only;
  hist_only.include_attributes = false;
  hist_only.include_behavior = false;
  tensor::Matrix x = BuildFeatureMatrix(ds, hist_only);
  for (size_t u = 0; u < ds.num_users; ++u) {
    float row_sum = 0.0f;
    for (size_t c = 0; c < x.cols(); ++c) row_sum += x.At(u, c);
    EXPECT_TRUE(row_sum == 0.0f || std::fabs(row_sum - 1.0f) < 1e-4f);
  }
}

// ---------------------------------------------------------------------------
// Split
// ---------------------------------------------------------------------------

TEST(SplitTest, SizesFollowFractions) {
  SocialDataset ds = TinyDataset();
  SplitOptions options;
  options.train_fraction = 0.8;
  options.test_fraction = 0.2;
  TrustSplit split = MakeSplit(ds, options);
  size_t total = ds.trust_edges.size();
  EXPECT_NEAR(static_cast<double>(split.test_positive.size()),
              0.2 * static_cast<double>(total), 2.0);
  EXPECT_NEAR(static_cast<double>(split.train_positive.size()),
              0.8 * static_cast<double>(total),
              static_cast<double>(total) * 0.05);
  // 2 negatives per positive in train, 1 in test.
  EXPECT_EQ(split.train_pairs.size(), split.train_positive.size() * 3);
  EXPECT_EQ(split.test_pairs.size(), split.test_positive.size() * 2);
}

TEST(SplitTest, TrainAndTestPositivesDisjoint) {
  SocialDataset ds = TinyDataset();
  TrustSplit split = MakeSplit(ds);
  std::set<std::pair<int, int>> train;
  for (const auto& e : split.train_positive) train.insert({e.src, e.dst});
  for (const auto& e : split.test_positive) {
    EXPECT_EQ(train.count({e.src, e.dst}), 0u);
  }
}

TEST(SplitTest, TestSetFixedAcrossTrainFractions) {
  SocialDataset ds = TinyDataset();
  SplitOptions a;
  a.train_fraction = 0.5;
  SplitOptions b;
  b.train_fraction = 0.8;
  TrustSplit split_a = MakeSplit(ds, a);
  TrustSplit split_b = MakeSplit(ds, b);
  ASSERT_EQ(split_a.test_positive.size(), split_b.test_positive.size());
  for (size_t i = 0; i < split_a.test_positive.size(); ++i) {
    EXPECT_EQ(split_a.test_positive[i].src, split_b.test_positive[i].src);
    EXPECT_EQ(split_a.test_positive[i].dst, split_b.test_positive[i].dst);
  }
  EXPECT_LT(split_a.train_positive.size(), split_b.train_positive.size());
}

TEST(SplitTest, NegativesAreNeverTrustEdges) {
  SocialDataset ds = TinyDataset();
  TrustSplit split = MakeSplit(ds);
  std::set<std::pair<int, int>> all_positive;
  for (const auto& e : ds.trust_edges) all_positive.insert({e.src, e.dst});
  auto check = [&](const std::vector<TrustPair>& pairs) {
    for (const TrustPair& p : pairs) {
      if (p.label == 0.0f) {
        EXPECT_EQ(all_positive.count({p.src, p.dst}), 0u);
        EXPECT_NE(p.src, p.dst);
      }
    }
  };
  check(split.train_pairs);
  check(split.test_pairs);
}

TEST(SplitTest, HardNegativesAreNearbyNonEdges) {
  SocialDataset ds = TinyDataset();
  SplitOptions options;
  options.hard_negative_fraction = 1.0;
  TrustSplit split = MakeSplit(ds, options);
  auto g = ds.TrustGraph().value();
  size_t near = 0, total = 0;
  for (const TrustPair& p : split.test_pairs) {
    if (p.label != 0.0f) continue;
    ++total;
    std::vector<int> ball = g.NeighborhoodBall(p.src, 3);
    if (std::find(ball.begin(), ball.end(), p.dst) != ball.end()) ++near;
  }
  ASSERT_GT(total, 0u);
  // All-hard sampling: nearly every negative within 3 hops (a few fall back
  // to uniform when the ball has no eligible target).
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.9);
}

TEST(SplitTest, ZeroHardFractionIsUniform) {
  SocialDataset ds = TinyDataset();
  SplitOptions options;
  options.hard_negative_fraction = 0.0;
  TrustSplit split = MakeSplit(ds, options);
  // Still valid negatives, still the right count.
  EXPECT_EQ(split.test_pairs.size(), split.test_positive.size() * 2);
}

TEST(SplitTest, DeterministicForSeed) {
  SocialDataset ds = TinyDataset();
  TrustSplit a = MakeSplit(ds);
  TrustSplit b = MakeSplit(ds);
  ASSERT_EQ(a.train_pairs.size(), b.train_pairs.size());
  for (size_t i = 0; i < a.train_pairs.size(); ++i) {
    EXPECT_EQ(a.train_pairs[i].src, b.train_pairs[i].src);
    EXPECT_EQ(a.train_pairs[i].dst, b.train_pairs[i].dst);
    EXPECT_EQ(a.train_pairs[i].label, b.train_pairs[i].label);
  }
}

// ---------------------------------------------------------------------------
// Temporal split
// ---------------------------------------------------------------------------

TEST(TemporalSplitTest, GeneratorEmitsMonotoneTimes) {
  SocialDataset ds = TinyDataset();
  ASSERT_EQ(ds.trust_edge_times.size(), ds.trust_edges.size());
  for (size_t i = 1; i < ds.trust_edge_times.size(); ++i) {
    EXPECT_LE(ds.trust_edge_times[i - 1], ds.trust_edge_times[i]);
  }
  EXPECT_EQ(ds.trust_edge_times.front(), 0.0);
  EXPECT_EQ(ds.trust_edge_times.back(), 1.0);
}

TEST(TemporalSplitTest, TrainsOnPastTestsOnFuture) {
  SocialDataset ds = TinyDataset();
  TrustSplit split = MakeTemporalSplit(ds);
  // Map each edge to its time.
  std::map<std::pair<int, int>, double> time_of;
  for (size_t i = 0; i < ds.trust_edges.size(); ++i) {
    time_of[{ds.trust_edges[i].src, ds.trust_edges[i].dst}] =
        ds.trust_edge_times[i];
  }
  double max_train = 0.0;
  for (const auto& e : split.train_positive) {
    max_train = std::max(max_train, time_of[{e.src, e.dst}]);
  }
  double min_test = 1.0;
  for (const auto& e : split.test_positive) {
    min_test = std::min(min_test, time_of[{e.src, e.dst}]);
  }
  EXPECT_LE(max_train, min_test);
}

TEST(TemporalSplitTest, RequiresTimes) {
  SocialDataset ds = TinyDataset();
  ds.trust_edge_times.clear();
  EXPECT_DEATH(MakeTemporalSplit(ds), "trust_edge_times");
}

// ---------------------------------------------------------------------------
// IO round trip
// ---------------------------------------------------------------------------

TEST(IoTest, SaveLoadRoundTrip) {
  SocialDataset ds = TinyDataset();
  std::string dir = ::testing::TempDir() + "/ahntp_io_test";
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, ds.name);
  EXPECT_EQ(loaded->num_users, ds.num_users);
  EXPECT_EQ(loaded->num_items, ds.num_items);
  EXPECT_EQ(loaded->attribute_names, ds.attribute_names);
  EXPECT_EQ(loaded->attributes, ds.attributes);
  EXPECT_EQ(loaded->item_categories, ds.item_categories);
  EXPECT_EQ(loaded->communities, ds.communities);
  ASSERT_EQ(loaded->purchases.size(), ds.purchases.size());
  for (size_t i = 0; i < ds.purchases.size(); ++i) {
    EXPECT_EQ(loaded->purchases[i].user, ds.purchases[i].user);
    EXPECT_EQ(loaded->purchases[i].item, ds.purchases[i].item);
    EXPECT_NEAR(loaded->purchases[i].rating, ds.purchases[i].rating, 1e-4f);
  }
  ASSERT_EQ(loaded->trust_edges.size(), ds.trust_edges.size());
  ASSERT_EQ(loaded->trust_edge_times.size(), ds.trust_edge_times.size());
  for (size_t i = 0; i < ds.trust_edge_times.size(); ++i) {
    EXPECT_NEAR(loaded->trust_edge_times[i], ds.trust_edge_times[i], 1e-5);
  }
  std::filesystem::remove_all(dir);
}

TEST(IoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadDataset("/definitely/not/a/real/dir");
  EXPECT_FALSE(loaded.ok());
}

// ---------------------------------------------------------------------------
// Adversarial attack overlays (DESIGN.md §16)
// ---------------------------------------------------------------------------

TEST(AttackTest, AllDefaultSpecMatchesCleanGeneration) {
  SocialNetworkGenerator gen(TinyConfig());
  SocialDataset clean = gen.Generate();
  AttackReport report;
  auto attacked = gen.GenerateWithAttacks(AttackSpec{}, &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  EXPECT_FALSE(AttackSpec{}.any());
  EXPECT_TRUE(report.attackers.empty());
  ASSERT_EQ(attacked->trust_edges.size(), clean.trust_edges.size());
  for (size_t i = 0; i < clean.trust_edges.size(); ++i) {
    EXPECT_EQ(attacked->trust_edges[i].src, clean.trust_edges[i].src);
    EXPECT_EQ(attacked->trust_edges[i].dst, clean.trust_edges[i].dst);
  }
  EXPECT_EQ(attacked->trust_edge_times, clean.trust_edge_times);
  EXPECT_EQ(attacked->attributes, clean.attributes);
  ASSERT_EQ(attacked->purchases.size(), clean.purchases.size());
}

TEST(AttackTest, CleanPrefixPreservedUnderSybilRings) {
  SocialNetworkGenerator gen(TinyConfig());
  SocialDataset clean = gen.Generate();
  AttackReport report;
  auto attacked =
      gen.GenerateWithAttacks(AttackSpec::SybilRing(2, 4), &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  ASSERT_EQ(report.clean_edges, clean.trust_edges.size());
  // The clean generation phases ran on the untouched RNG prefix, so the
  // first clean_edges edges are element-for-element the clean dataset's.
  for (size_t i = 0; i < report.clean_edges; ++i) {
    EXPECT_EQ(attacked->trust_edges[i].src, clean.trust_edges[i].src);
    EXPECT_EQ(attacked->trust_edges[i].dst, clean.trust_edges[i].dst);
  }
  EXPECT_GT(report.sybil_edges, 0u);
  EXPECT_EQ(attacked->trust_edges.size(),
            report.clean_edges + report.sybil_edges);
  // Roster: 2 rings x 4 members, distinct, ascending.
  ASSERT_EQ(report.attackers.size(), 8u);
  for (size_t i = 1; i < report.attackers.size(); ++i) {
    EXPECT_LT(report.attackers[i - 1], report.attackers[i]);
  }
  EXPECT_TRUE(attacked->Validate().ok());
}

TEST(AttackTest, SybilRingOfFourIsMutuallyConnected) {
  // Cycle + reverse + chords on a 4-ring yields every ordered member pair.
  SocialNetworkGenerator gen(TinyConfig());
  AttackReport report;
  auto attacked =
      gen.GenerateWithAttacks(AttackSpec::SybilRing(1, 4), &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  ASSERT_EQ(report.attackers.size(), 4u);
  std::set<std::pair<int, int>> edges;
  for (const auto& e : attacked->trust_edges) edges.insert({e.src, e.dst});
  for (int a : report.attackers) {
    for (int b : report.attackers) {
      if (a == b) continue;
      EXPECT_TRUE(edges.count({a, b}) > 0)
          << "missing intra-ring edge " << a << " -> " << b;
    }
  }
}

TEST(AttackTest, SpamHubsEmitTheReportedOutEdges) {
  SocialNetworkGenerator gen(TinyConfig());
  SocialDataset clean = gen.Generate();
  AttackReport report;
  auto attacked =
      gen.GenerateWithAttacks(AttackSpec::SpamHubs(2, 30), &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  EXPECT_GT(report.spam_edges, 0u);
  EXPECT_EQ(attacked->trust_edges.size(),
            report.clean_edges + report.spam_edges);
  // Every post-dedup spam edge is accounted for by hub out-degree growth.
  auto out_degree = [](const SocialDataset& ds, int user) {
    size_t d = 0;
    for (const auto& e : ds.trust_edges) d += e.src == user ? 1 : 0;
    return d;
  };
  size_t growth = 0;
  for (int hub : report.attackers) {
    growth += out_degree(*attacked, hub) - out_degree(clean, hub);
  }
  EXPECT_EQ(growth, report.spam_edges);
}

TEST(AttackTest, ShiftRewritesOnlyTailEdgesCrossCommunity) {
  SocialNetworkGenerator gen(TinyConfig());
  SocialDataset clean = gen.Generate();
  AttackReport report;
  auto attacked = gen.GenerateWithAttacks(AttackSpec::Shift(0.5), &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  EXPECT_GT(report.shifted_edges, 0u);
  // Shift re-targets in place: no edges added or removed.
  ASSERT_EQ(attacked->trust_edges.size(), clean.trust_edges.size());
  const size_t window_start =
      clean.trust_edges.size() - clean.trust_edges.size() / 4;
  size_t shifted_seen = 0;
  for (size_t i = 0; i < clean.trust_edges.size(); ++i) {
    EXPECT_EQ(attacked->trust_edges[i].src, clean.trust_edges[i].src);
    if (attacked->trust_edges[i].dst == clean.trust_edges[i].dst) continue;
    ++shifted_seen;
    EXPECT_GE(i, window_start) << "shift touched a pre-window edge";
    const auto& e = attacked->trust_edges[i];
    EXPECT_NE(attacked->communities[static_cast<size_t>(e.src)],
              attacked->communities[static_cast<size_t>(e.dst)])
        << "shifted edge " << i << " stayed intra-community";
  }
  EXPECT_EQ(shifted_seen, report.shifted_edges);
}

TEST(AttackTest, CamouflageCopiesRoleModelAttributesAndPurchases) {
  SocialNetworkGenerator gen(TinyConfig());
  SocialDataset clean = gen.Generate();
  AttackReport report;
  auto attacked =
      gen.GenerateWithAttacks(AttackSpec::Camouflaged(2, 4, 0.9), &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  EXPECT_GT(report.camouflaged_users, 0u);
  EXPECT_LE(report.camouflaged_users, report.attackers.size());
  EXPECT_LE(report.camouflage_purchases, report.camouflaged_users * 20);
  ASSERT_EQ(attacked->purchases.size(),
            clean.purchases.size() + report.camouflage_purchases);
  // Every appended purchase belongs to an attacker (the copied baskets).
  std::set<int> attackers(report.attackers.begin(), report.attackers.end());
  for (size_t p = clean.purchases.size(); p < attacked->purchases.size();
       ++p) {
    EXPECT_TRUE(attackers.count(attacked->purchases[p].user) > 0);
  }
  // A camouflaged attacker's full attribute row matches some honest user's.
  size_t disguised = 0;
  for (int attacker : report.attackers) {
    for (size_t u = 0; u < attacked->num_users; ++u) {
      if (attackers.count(static_cast<int>(u)) > 0) continue;
      bool match = true;
      for (const auto& column : attacked->attributes) {
        if (column[static_cast<size_t>(attacker)] != column[u]) {
          match = false;
          break;
        }
      }
      if (match) {
        ++disguised;
        break;
      }
    }
  }
  EXPECT_GE(disguised, report.camouflaged_users);
}

TEST(AttackTest, EdgeTimesRenormalizedOverFinalList) {
  SocialNetworkGenerator gen(TinyConfig());
  AttackReport report;
  auto attacked =
      gen.GenerateWithAttacks(AttackSpec::SpamHubs(3, 20), &report);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  ASSERT_EQ(attacked->trust_edge_times.size(), attacked->trust_edges.size());
  EXPECT_DOUBLE_EQ(attacked->trust_edge_times.front(), 0.0);
  EXPECT_DOUBLE_EQ(attacked->trust_edge_times.back(), 1.0);
  for (size_t i = 1; i < attacked->trust_edge_times.size(); ++i) {
    EXPECT_LT(attacked->trust_edge_times[i - 1],
              attacked->trust_edge_times[i]);
  }
}

TEST(AttackTest, DeterministicForSameSpec) {
  SocialNetworkGenerator gen(TinyConfig());
  AttackSpec spec = AttackSpec::Camouflaged(2, 4, 0.9);
  spec.shift_fraction = 0.3;
  auto a = gen.GenerateWithAttacks(spec);
  auto b = gen.GenerateWithAttacks(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->trust_edges.size(), b->trust_edges.size());
  for (size_t i = 0; i < a->trust_edges.size(); ++i) {
    EXPECT_EQ(a->trust_edges[i].src, b->trust_edges[i].src);
    EXPECT_EQ(a->trust_edges[i].dst, b->trust_edges[i].dst);
  }
  EXPECT_EQ(a->attributes, b->attributes);
  EXPECT_EQ(a->purchases.size(), b->purchases.size());
}

TEST(AttackTest, DegenerateSpecsAreRejected) {
  const GeneratorConfig config = TinyConfig();
  auto expect_invalid = [&config](AttackSpec spec, const char* what) {
    Status status = spec.Validate(config);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << what;
    // The generator surface agrees with Validate.
    auto result = SocialNetworkGenerator(config).GenerateWithAttacks(spec);
    EXPECT_FALSE(result.ok()) << what;
  };
  expect_invalid(AttackSpec::SybilRing(2, 0), "zero-size rings");
  expect_invalid(AttackSpec::SybilRing(0, 4), "rings without a count");
  expect_invalid(AttackSpec::SybilRing(2, 1), "one-member ring");
  expect_invalid(AttackSpec::SybilRing(200, 4),
                 "roster exceeding the population");
  expect_invalid(AttackSpec::SpamHubs(2, 0), "hubs without edges");
  expect_invalid(AttackSpec::SpamHubs(0, 10), "edges without hubs");
  expect_invalid(AttackSpec::SpamHubs(2, 500),
                 "per-hub fanout exceeding the population");
  expect_invalid(AttackSpec::Camouflaged(2, 4, 0.0), "zero camouflage");
  expect_invalid(AttackSpec::Camouflaged(2, 4, 1.0), "total camouflage");
  expect_invalid(AttackSpec::Camouflaged(2, 4,
                     std::numeric_limits<double>::quiet_NaN()),
                 "NaN camouflage fraction");
  {
    AttackSpec spec;
    spec.camouflage_fraction = 0.5;  // nobody to disguise
    expect_invalid(spec, "camouflage without attackers");
  }
  expect_invalid(AttackSpec::Shift(0.0), "zero shift");
  expect_invalid(AttackSpec::Shift(1.0), "total shift");
  expect_invalid(AttackSpec::Shift(
                     std::numeric_limits<double>::quiet_NaN()),
                 "NaN shift fraction");
  {
    GeneratorConfig one_community = config;
    one_community.num_communities = 1;
    Status status = AttackSpec::Shift(0.5).Validate(one_community);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "shift needs >= 2 communities";
  }
  // A well-formed composite spec passes the same gate.
  AttackSpec composite = AttackSpec::Camouflaged(2, 4, 0.9);
  composite.shift_fraction = 0.3;
  EXPECT_TRUE(composite.Validate(config).ok());
}

}  // namespace
}  // namespace ahntp::data
