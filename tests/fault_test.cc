// Fault-tolerance tests (DESIGN.md §10): the fault-injection registry,
// checksummed atomic checkpoints, the trainer's divergence guard, and
// resumable degraded experiment sweeps.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/fileio.h"
#include "core/experiment.h"
#include "core/model_zoo.h"
#include "core/repeated.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/io.h"
#include "nn/serialization.h"

namespace ahntp {
namespace {

using autograd::Variable;
using tensor::Matrix;

/// Every test in this file runs with a clean (disabled) registry: the
/// registry is process-global, so leaked specs would poison later tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Disable(); }
  void TearDown() override { fault::Disable(); }
};

// ---------------------------------------------------------------------------
// Fault-injection registry
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DisabledByDefault) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldInject("anything"));
  EXPECT_TRUE(fault::MaybeIoError("anything").ok());
  EXPECT_NO_THROW(fault::MaybeThrow("anything"));
  EXPECT_EQ(fault::InjectionCount(), 0);
}

TEST_F(FaultTest, SpecGrammarErrors) {
  EXPECT_EQ(fault::EnableFromSpec("no_at_sign").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::EnableFromSpec("site@").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::EnableFromSpec("site@zero").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::EnableFromSpec("site@0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::EnableFromSpec("site@~1.5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::EnableFromSpec("@3").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(fault::Enabled());  // failed installs do not enable
  EXPECT_TRUE(fault::EnableFromSpec("a@1,b@2+,c@*,d@~0.25").ok());
  EXPECT_TRUE(fault::Enabled());
  EXPECT_TRUE(fault::EnableFromSpec("").ok());  // empty spec disables
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(FaultTest, NthHitFiresExactlyOnce) {
  ASSERT_TRUE(fault::EnableFromSpec("site@3").ok());
  EXPECT_FALSE(fault::ShouldInject("site"));
  EXPECT_FALSE(fault::ShouldInject("site"));
  EXPECT_TRUE(fault::ShouldInject("site"));
  EXPECT_FALSE(fault::ShouldInject("site"));
  EXPECT_EQ(fault::InjectionCount(), 1);
  // A different site never fires (no trigger installed for it).
  EXPECT_FALSE(fault::ShouldInject("other"));
}

TEST_F(FaultTest, FromNthFiresForever) {
  ASSERT_TRUE(fault::EnableFromSpec("site@2+").ok());
  EXPECT_FALSE(fault::ShouldInject("site"));
  EXPECT_TRUE(fault::ShouldInject("site"));
  EXPECT_TRUE(fault::ShouldInject("site"));
  EXPECT_EQ(fault::InjectionCount(), 2);
}

TEST_F(FaultTest, ProbabilisticTriggerIsDeterministicInSeed) {
  auto draw_sequence = [] {
    fault::Disable();
    fault::SetSeed(42);
    EXPECT_TRUE(fault::EnableFromSpec("p@~0.5").ok());
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(fault::ShouldInject("p"));
    return fires;
  };
  std::vector<bool> first = draw_sequence();
  std::vector<bool> second = draw_sequence();
  EXPECT_EQ(first, second);
  int count = 0;
  for (bool b : first) count += b ? 1 : 0;
  EXPECT_GT(count, 50);   // ~100 expected; loose bounds, zero flake
  EXPECT_LT(count, 150);
  // A different seed draws a different sequence.
  fault::Disable();
  fault::SetSeed(43);
  ASSERT_TRUE(fault::EnableFromSpec("p@~0.5").ok());
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) other.push_back(fault::ShouldInject("p"));
  EXPECT_NE(first, other);
}

TEST_F(FaultTest, MaybeIoErrorAndMaybeThrow) {
  ASSERT_TRUE(fault::EnableFromSpec("io@1,throw@1").ok());
  Status status = fault::MaybeIoError("io");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(fault::MaybeIoError("io").ok());  // one-shot
  EXPECT_THROW(fault::MaybeThrow("throw"), std::runtime_error);
  EXPECT_NO_THROW(fault::MaybeThrow("throw"));
}

// ---------------------------------------------------------------------------
// CRC32 and atomic writes
// ---------------------------------------------------------------------------

TEST(FileIoTest, Crc32KnownVector) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Incremental computation matches one-shot.
  uint32_t partial = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, partial), 0xCBF43926u);
}

TEST(FileIoTest, WriteFileAtomicWritesAndLeavesNoTemp) {
  std::string path = ::testing::TempDir() + "/ahntp_atomic_write.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "hello").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Overwrite is atomic too.
  ASSERT_TRUE(WriteFileAtomic(path, "world").ok());
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "world");
  std::filesystem::remove(path);
}

TEST(FileIoTest, WriteFileAtomicFailsCleanlyOnBadPath) {
  std::string path =
      ::testing::TempDir() + "/ahntp_no_such_dir/deeper/file.txt";
  Status status = WriteFileAtomic(path, "x");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Checkpoints: v2 round trip, corruption, v1 compatibility, save faults
// ---------------------------------------------------------------------------

std::vector<Variable> MakeParams(uint64_t seed) {
  Rng rng(seed);
  std::vector<Variable> params;
  params.push_back(autograd::Parameter(Matrix::Randn(3, 4, &rng)));
  params.push_back(autograd::Parameter(Matrix::Randn(2, 2, &rng)));
  return params;
}

bool SameValues(const std::vector<Variable>& a,
                const std::vector<Variable>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].value().AllClose(b[i].value(), 0.0f)) return false;
  }
  return true;
}

TEST_F(FaultTest, CheckpointV2RoundTrip) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_v2.ckpt";
  std::vector<Variable> saved = MakeParams(1);
  ASSERT_TRUE(nn::SaveParameters(saved, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::vector<Variable> loaded = MakeParams(2);
  ASSERT_FALSE(SameValues(saved, loaded));
  ASSERT_TRUE(nn::LoadParameters(&loaded, path).ok());
  EXPECT_TRUE(SameValues(saved, loaded));
  std::filesystem::remove(path);
}

TEST_F(FaultTest, InjectedSaveFaultLeavesExistingCheckpointIntact) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_fault.ckpt";
  std::vector<Variable> first = MakeParams(1);
  ASSERT_TRUE(nn::SaveParameters(first, path).ok());

  ASSERT_TRUE(fault::EnableFromSpec("checkpoint.save@1").ok());
  std::vector<Variable> second = MakeParams(2);
  Status status = nn::SaveParameters(second, path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  fault::Disable();

  // The failed save must not have clobbered or half-written the file.
  std::vector<Variable> loaded = MakeParams(3);
  ASSERT_TRUE(nn::LoadParameters(&loaded, path).ok());
  EXPECT_TRUE(SameValues(first, loaded));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST_F(FaultTest, BitFlippedCheckpointRejectedParamsUntouched) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_flip.ckpt";
  ASSERT_TRUE(nn::SaveParameters(MakeParams(1), path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  // Flip one bit in the middle of the payload.
  image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x10);
  ASSERT_TRUE(WriteFileAtomic(path, image).ok());

  std::vector<Variable> params = MakeParams(7);
  std::vector<Variable> before = MakeParams(7);
  Status status = nn::LoadParameters(&params, path);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_TRUE(SameValues(params, before));  // untouched on failure
  std::filesystem::remove(path);
}

TEST_F(FaultTest, TruncatedCheckpointRejected) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_trunc.ckpt";
  ASSERT_TRUE(nn::SaveParameters(MakeParams(1), path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  for (size_t keep : {size_t{0}, size_t{4}, size_t{8}, size_t{12},
                      image.size() / 2, image.size() - 1}) {
    ASSERT_TRUE(WriteFileAtomic(path, image.substr(0, keep)).ok());
    std::vector<Variable> params = MakeParams(7);
    std::vector<Variable> before = MakeParams(7);
    Status status = nn::LoadParameters(&params, path);
    EXPECT_FALSE(status.ok()) << "accepted a checkpoint truncated to " << keep;
    EXPECT_TRUE(SameValues(params, before));
  }
  std::filesystem::remove(path);
}

TEST_F(FaultTest, TrailingGarbageRejected) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_trail.ckpt";
  ASSERT_TRUE(nn::SaveParameters(MakeParams(1), path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  ASSERT_TRUE(WriteFileAtomic(path, image + "extra").ok());
  std::vector<Variable> params = MakeParams(7);
  EXPECT_EQ(nn::LoadParameters(&params, path).code(),
            StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST_F(FaultTest, LegacyV1CheckpointStillLoads) {
  // Hand-write a v1 file: magic, count, rows, cols, float32 payload — no
  // checksum footer.
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_v1.ckpt";
  std::string image = "AHNTPCK1";
  auto append_u64 = [&image](uint64_t v) {
    image.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u64(1);  // one parameter
  append_u64(2);  // rows
  append_u64(2);  // cols
  const float values[4] = {1.5f, -2.0f, 0.25f, 8.0f};
  image.append(reinterpret_cast<const char*>(values), sizeof(values));
  ASSERT_TRUE(WriteFileAtomic(path, image).ok());

  std::vector<Variable> params;
  params.push_back(autograd::Parameter(Matrix::Zeros(2, 2)));
  ASSERT_TRUE(nn::LoadParameters(&params, path).ok());
  EXPECT_FLOAT_EQ(params[0].value().At(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(params[0].value().At(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(params[0].value().At(1, 0), 0.25f);
  EXPECT_FLOAT_EQ(params[0].value().At(1, 1), 8.0f);
  std::filesystem::remove(path);
}

TEST_F(FaultTest, UnknownMagicRejected) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_magic.ckpt";
  ASSERT_TRUE(WriteFileAtomic(path, "NOTACKPT-and-some-padding").ok());
  std::vector<Variable> params = MakeParams(1);
  EXPECT_EQ(nn::LoadParameters(&params, path).code(),
            StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST_F(FaultTest, ShapeMismatchIsInvalidArgument) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_shape.ckpt";
  ASSERT_TRUE(nn::SaveParameters(MakeParams(1), path).ok());
  std::vector<Variable> wrong;
  Rng rng(9);
  wrong.push_back(autograd::Parameter(Matrix::Randn(5, 5, &rng)));
  EXPECT_EQ(nn::LoadParameters(&wrong, path).code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Trainer: config validation and the divergence guard
// ---------------------------------------------------------------------------

/// Small shared model fixture: 40 users, SGC encoder (cheapest learned
/// model), a handful of epochs.
class TrainerFixture {
 public:
  TrainerFixture() : rng_(23) {
    data::GeneratorConfig config;
    config.num_users = 40;
    config.num_items = 30;
    config.num_communities = 2;
    config.avg_trust_out_degree = 4.0;
    config.avg_purchases_per_user = 3.0;
    config.seed = 5;
    dataset_ = data::SocialNetworkGenerator(config).Generate();
    split_ = data::MakeSplit(dataset_);
    graph_ = dataset_.GraphFromEdges(split_.train_positive).value();
    features_ = data::BuildFeatureMatrix(dataset_);
    inputs_.features = &features_;
    inputs_.graph = &graph_;
    inputs_.dataset = &dataset_;
    inputs_.hidden_dims = {8, 4};
    inputs_.dropout = 0.0f;
    inputs_.rng = &rng_;
  }

  /// A freshly initialized predictor (deterministic per seed).
  models::TrustPredictor MakePredictor(uint64_t seed) {
    Rng rng(seed);
    models::ModelInputs inputs = inputs_;
    inputs.rng = &rng;
    auto spec = core::CreateEncoder("SGC", inputs, core::AhntpConfig{});
    AHNTP_CHECK(spec.ok());
    return models::TrustPredictor(spec->encoder,
                                  models::TrustPredictorConfig{}, &rng);
  }

  const std::vector<data::TrustPair>& train_pairs() const {
    return split_.train_pairs;
  }
  const data::SocialDataset& dataset() const { return dataset_; }

 private:
  Rng rng_;
  data::SocialDataset dataset_;
  data::TrustSplit split_;
  graph::Digraph graph_{0};
  tensor::Matrix features_;
  models::ModelInputs inputs_;
};

TrainerFixture& Fixture() {
  static TrainerFixture* fixture = new TrainerFixture();
  return *fixture;
}

TEST(TrainerValidationTest, RejectsInvalidConfigs) {
  auto expect_invalid = [](core::TrainerConfig config,
                           const std::string& what) {
    Status status = core::ValidateTrainerConfig(config);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << what;
    EXPECT_NE(status.message().find(what), std::string::npos)
        << "message \"" << status.message() << "\" does not name " << what;
  };
  core::TrainerConfig config;
  EXPECT_TRUE(core::ValidateTrainerConfig(config).ok());

  config = {};
  config.epochs = 0;
  expect_invalid(config, "epochs");
  config = {};
  config.learning_rate = -0.1f;
  expect_invalid(config, "learning_rate");
  config = {};
  config.learning_rate = std::numeric_limits<float>::quiet_NaN();
  expect_invalid(config, "learning_rate");
  config = {};
  config.lambda1 = -1.0f;
  expect_invalid(config, "lambda1");
  config = {};
  config.temperature = 0.0f;
  expect_invalid(config, "temperature");
  config = {};
  config.patience = -2;
  expect_invalid(config, "patience");
  config = {};
  config.eval_every = 0;
  expect_invalid(config, "eval_every");
  config = {};
  config.divergence_factor = 1.0;
  expect_invalid(config, "divergence_factor");
  config = {};
  config.max_divergence_rollbacks = -1;
  expect_invalid(config, "max_divergence_rollbacks");
}

TEST(TrainerValidationTest, FitRejectsBadConfigAndEmptyTrainSet) {
  models::TrustPredictor predictor = Fixture().MakePredictor(1);
  core::TrainerConfig bad;
  bad.epochs = -5;
  auto result = core::Trainer(bad).Fit(&predictor, Fixture().train_pairs());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  core::TrainerConfig ok_config;
  auto empty = core::Trainer(ok_config).Fit(&predictor, {});
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultTest, NanGradientRollsBackAndRecovers) {
  models::TrustPredictor predictor = Fixture().MakePredictor(1);
  core::TrainerConfig config;
  config.epochs = 5;
  config.seed = 3;
  // Poison the 2nd guarded batch gradient with NaN.
  ASSERT_TRUE(fault::EnableFromSpec("trainer.nan_grad@2").ok());
  auto result = core::Trainer(config).Fit(&predictor, Fixture().train_pairs());
  fault::Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rollbacks, 1);
  EXPECT_FALSE(result->divergence_halt);
  ASSERT_EQ(result->events.size(), 1u);
  EXPECT_NE(result->events[0].find("rolled back"), std::string::npos);
  EXPECT_TRUE(std::isfinite(result->final_loss));
  // The rolled-back epoch is recorded in the history.
  int rolled = 0;
  for (const core::EpochStats& s : result->history) rolled += s.rolled_back;
  EXPECT_EQ(rolled, 1);
  // The model is still usable: every prediction finite.
  for (float p : predictor.PredictProbabilities(Fixture().train_pairs())) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST_F(FaultTest, PersistentNanHaltsAfterRollbackBudget) {
  models::TrustPredictor predictor = Fixture().MakePredictor(1);
  core::TrainerConfig config;
  config.epochs = 20;
  config.max_divergence_rollbacks = 2;
  ASSERT_TRUE(fault::EnableFromSpec("trainer.nan_grad@*").ok());
  auto result = core::Trainer(config).Fit(&predictor, Fixture().train_pairs());
  fault::Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->divergence_halt);
  EXPECT_EQ(result->num_rollbacks, 2);
  // Halted well before the epoch budget.
  EXPECT_LT(result->history.size(), 20u);
}

TEST_F(FaultTest, GuardLeavesHealthyTrainingBitIdentical) {
  core::TrainerConfig with_guard;
  with_guard.epochs = 4;
  core::TrainerConfig without_guard = with_guard;
  without_guard.divergence_guard = false;

  models::TrustPredictor a = Fixture().MakePredictor(1);
  models::TrustPredictor b = Fixture().MakePredictor(1);
  auto ra = core::Trainer(with_guard).Fit(&a, Fixture().train_pairs());
  auto rb = core::Trainer(without_guard).Fit(&b, Fixture().train_pairs());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->num_rollbacks, 0);
  ASSERT_EQ(ra->history.size(), rb->history.size());
  for (size_t e = 0; e < ra->history.size(); ++e) {
    EXPECT_EQ(ra->history[e].loss, rb->history[e].loss) << "epoch " << e;
  }
  std::vector<float> pa = a.PredictProbabilities(Fixture().train_pairs());
  std::vector<float> pb = b.PredictProbabilities(Fixture().train_pairs());
  EXPECT_EQ(pa, pb);
}

// ---------------------------------------------------------------------------
// Sweeps: degraded runs, resume, state integrity
// ---------------------------------------------------------------------------

/// Heuristic-model sweep config: runs in milliseconds, exercises the same
/// sweep machinery as the learned models.
core::ExperimentConfig SweepConfig() {
  core::ExperimentConfig config;
  config.model = "Jaccard";
  return config;
}

TEST_F(FaultTest, ThrowingRunDegradesSweep) {
  ASSERT_TRUE(fault::EnableFromSpec("experiment.run@2").ok());
  auto result = core::RunRepeatedExperiment(Fixture().dataset(), SweepConfig(),
                                            4, /*vary_split_seed=*/true);
  fault::Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_runs, 3);
  EXPECT_EQ(result->num_failed, 1);
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_NE(result->failures[0].find("injected fault"), std::string::npos);
  EXPECT_NE(result->ToString().find("1 failed"), std::string::npos);
}

TEST_F(FaultTest, AllRunsFailingReturnsError) {
  ASSERT_TRUE(fault::EnableFromSpec("experiment.run@*").ok());
  auto result = core::RunRepeatedExperiment(Fixture().dataset(), SweepConfig(),
                                            3, /*vary_split_seed=*/true);
  fault::Disable();
  EXPECT_FALSE(result.ok());
}

TEST_F(FaultTest, InterruptedSweepResumesBitIdentical) {
  std::string state = ::testing::TempDir() + "/ahntp_sweep_resume.state";
  std::filesystem::remove(state);
  core::SweepOptions options;
  options.state_path = state;

  // Uninterrupted reference sweep (no state file involved).
  auto reference = core::RunRepeatedExperiment(
      Fixture().dataset(), SweepConfig(), 4, /*vary_split_seed=*/true);
  ASSERT_TRUE(reference.ok());

  // "Interrupted" sweep: run 3 dies, the rest checkpoint their results.
  ASSERT_TRUE(fault::EnableFromSpec("experiment.run@3").ok());
  auto partial = core::RunRepeatedExperiment(
      Fixture().dataset(), SweepConfig(), 4, /*vary_split_seed=*/true,
      options);
  fault::Disable();
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->num_failed, 1);
  ASSERT_TRUE(std::filesystem::exists(state));

  // Resume: completed runs come from the state file, the failed run is
  // retried, and the aggregate matches the uninterrupted sweep exactly.
  options.resume = true;
  auto resumed = core::RunRepeatedExperiment(
      Fixture().dataset(), SweepConfig(), 4, /*vary_split_seed=*/true,
      options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->num_resumed, 3);
  EXPECT_EQ(resumed->num_failed, 0);
  EXPECT_EQ(resumed->num_runs, reference->num_runs);
  EXPECT_EQ(resumed->accuracy.mean, reference->accuracy.mean);
  EXPECT_EQ(resumed->accuracy.stddev, reference->accuracy.stddev);
  EXPECT_EQ(resumed->f1.mean, reference->f1.mean);
  EXPECT_EQ(resumed->f1.stddev, reference->f1.stddev);
  EXPECT_EQ(resumed->auc.mean, reference->auc.mean);
  EXPECT_EQ(resumed->auc.stddev, reference->auc.stddev);
  EXPECT_EQ(resumed->last.threshold, reference->last.threshold);
  std::filesystem::remove(state);
}

TEST_F(FaultTest, ResumeRejectsMismatchedState) {
  std::string state = ::testing::TempDir() + "/ahntp_sweep_mismatch.state";
  std::filesystem::remove(state);
  core::SweepOptions options;
  options.state_path = state;
  ASSERT_TRUE(core::RunRepeatedExperiment(Fixture().dataset(), SweepConfig(),
                                          2, /*vary_split_seed=*/true,
                                          options)
                  .ok());
  options.resume = true;
  // Different run count → different sweep → the state must be refused.
  auto mismatch = core::RunRepeatedExperiment(Fixture().dataset(),
                                              SweepConfig(), 3,
                                              /*vary_split_seed=*/true,
                                              options);
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(state);
}

TEST_F(FaultTest, ResumeRejectsCorruptState) {
  std::string state = ::testing::TempDir() + "/ahntp_sweep_corrupt.state";
  core::SweepOptions options;
  options.state_path = state;
  ASSERT_TRUE(core::RunRepeatedExperiment(Fixture().dataset(), SweepConfig(),
                                          2, /*vary_split_seed=*/true,
                                          options)
                  .ok());
  // Append a malformed record.
  {
    std::ofstream out(state, std::ios::app);
    out << "run,not_an_index,ok\n";
  }
  options.resume = true;
  auto corrupt = core::RunRepeatedExperiment(Fixture().dataset(),
                                             SweepConfig(), 2,
                                             /*vary_split_seed=*/true,
                                             options);
  EXPECT_FALSE(corrupt.ok());
  std::filesystem::remove(state);
}

TEST_F(FaultTest, StateSaveFaultDegradesButSweepCompletes) {
  std::string state = ::testing::TempDir() + "/ahntp_sweep_iofault.state";
  std::filesystem::remove(state);
  core::SweepOptions options;
  options.state_path = state;
  ASSERT_TRUE(fault::EnableFromSpec("sweep.state.save@*").ok());
  auto result = core::RunRepeatedExperiment(Fixture().dataset(), SweepConfig(),
                                            2, /*vary_split_seed=*/true,
                                            options);
  fault::Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_runs, 2);
  EXPECT_FALSE(std::filesystem::exists(state));  // every save failed
}

// ---------------------------------------------------------------------------
// Dataset saves go through the same atomic path
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DatasetSaveFaultFailsCleanly) {
  std::string dir = ::testing::TempDir() + "/ahntp_ds_fault";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(fault::EnableFromSpec("dataset.save@1").ok());
  Status status = data::SaveDataset(Fixture().dataset(), dir);
  fault::Disable();
  EXPECT_EQ(status.code(), StatusCode::kIoError);

  // Without the fault the save works and round-trips.
  ASSERT_TRUE(data::SaveDataset(Fixture().dataset(), dir).ok());
  auto loaded = data::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users, Fixture().dataset().num_users);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ahntp
