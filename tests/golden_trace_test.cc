// Golden-trace regression test: runs the quickstart-shaped pipeline (small
// Ciao-like dataset, AHNTP, fixed seeds) with the observability layer on
// and compares the ordered set of span names plus every deterministic
// counter against tests/golden/quickstart_trace.golden.
//
// The golden covers exactly the values the determinism contract in
// common/metrics.h guarantees: span *names* (not timings) and integer
// counters / histogram observation counts, which are bit-identical at any
// --threads=N. Gauges, histogram sums, and durations are excluded.
//
// Removing an instrumented call site (a TraceSpan or AHNTP_METRIC_COUNT in
// the pipeline) changes this output and fails the test. To refresh after
// an intentional instrumentation change:
//
//   ./build/tests/golden_trace_test --update_golden
//
// (or set AHNTP_UPDATE_GOLDEN=1). The refreshed file is written back into
// the source tree via AHNTP_SOURCE_DIR.

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/experiment.h"
#include "data/generator.h"

namespace ahntp {
namespace {

bool g_update_golden = false;

std::string GoldenPath() {
  return std::string(AHNTP_SOURCE_DIR) + "/tests/golden/quickstart_trace.golden";
}

/// Renders the deterministic slice of the observability output, one record
/// per line, sorted — directly diffable against the golden file.
std::string RenderObservedGolden(const std::vector<trace::SpanEvent>& events,
                                 const metrics::Snapshot& snapshot) {
  std::string out =
      "# Golden observability trace for the quickstart-shaped pipeline\n"
      "# (CiaoLike scale 0.03, AHNTP, dims 8-4, 3 epochs, fixed seeds).\n"
      "# Spans are unique names; counter/histogram values are exact.\n"
      "# Regenerate: ./build/tests/golden_trace_test --update_golden\n";
  std::set<std::string> span_names;
  for (const trace::SpanEvent& e : events) span_names.insert(e.name);
  for (const std::string& name : span_names) {
    out += "span " + name + "\n";
  }
  for (const metrics::CounterSample& c : snapshot.counters) {
    out += StrFormat("counter %s %lld\n", c.name.c_str(),
                     static_cast<long long>(c.value));
  }
  for (const metrics::HistogramSample& h : snapshot.histograms) {
    out += StrFormat("histogram_count %s %lld\n", h.name.c_str(),
                     static_cast<long long>(h.count));
  }
  return out;
}

TEST(GoldenTrace, QuickstartPipelineMatchesGolden) {
  metrics::Disable();
  metrics::Enable();
  trace::Disable();
  trace::Enable();

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::CiaoLike(0.03))
          .Generate();
  core::ExperimentConfig config;
  config.model = "AHNTP";
  config.hidden_dims = {8, 4};
  config.trainer.epochs = 3;
  // patience=0 disables early stopping, so the epoch count (and with it
  // every per-epoch counter) is fixed by the config, not the loss curve.
  config.trainer.patience = 0;
  auto result = core::RunExperiment(dataset, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  uint64_t dropped = 0;
  std::vector<trace::SpanEvent> events = trace::Snapshot(&dropped);
  ASSERT_EQ(dropped, 0u) << "ring buffer too small for the golden pipeline";
  ASSERT_FALSE(events.empty());
  std::string observed = RenderObservedGolden(events, metrics::Collect());
  metrics::Disable();
  trace::Disable();

  if (g_update_golden) {
    ASSERT_TRUE(WriteFileAtomic(GoldenPath(), observed).ok());
    GTEST_SKIP() << "golden refreshed at " << GoldenPath();
  }
  std::string expected;
  ASSERT_TRUE(ReadFileToString(GoldenPath(), &expected).ok())
      << "missing golden; run with --update_golden to create it";
  if (observed != expected) {
    // Line-level report beats a single giant string diff in gtest output.
    std::vector<std::string> obs = StrSplit(observed, '\n');
    std::vector<std::string> exp = StrSplit(expected, '\n');
    std::string delta;
    for (size_t i = 0; i < std::max(obs.size(), exp.size()); ++i) {
      const std::string o = i < obs.size() ? obs[i] : "<missing>";
      const std::string e = i < exp.size() ? exp[i] : "<missing>";
      if (o != e) {
        delta += StrFormat("  line %zu: got \"%s\", want \"%s\"\n", i + 1,
                           o.c_str(), e.c_str());
      }
    }
    FAIL() << "observability output diverged from golden ("
           << GoldenPath() << "):\n"
           << delta
           << "If the instrumentation change is intentional, refresh with "
              "--update_golden.";
  }
}

}  // namespace
}  // namespace ahntp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update_golden") {
      ahntp::g_update_golden = true;
    }
  }
  const char* env = std::getenv("AHNTP_UPDATE_GOLDEN");
  if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    ahntp::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
