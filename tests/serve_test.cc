// Tests for the online inference substrate (src/serve): bounded queue
// backpressure, cooperative deadlines, deterministic retry/backoff,
// circuit breaker trip/probe/recover with degraded fallback, checkpoint
// hot-reload, and the thread-count invariance of the whole pipeline
// (extending the tests/parallel_test.cc determinism pattern).

#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/fileio.h"
#include "common/parallel.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "nn/serialization.h"
#include "serve/backend.h"
#include "serve/bounded_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/retry.h"
#include "serve/server.h"

namespace ahntp {
namespace {

using serve::BoundedQueue;
using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::RetryPolicy;
using serve::ServeOptions;
using serve::TrustQuery;
using serve::TrustResponse;
using serve::TrustServer;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingMillis()));
}

TEST(DeadlineTest, ZeroBudgetIsExpiredImmediately) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0.0);
  EXPECT_LE(d.RemainingMillis(), 60000.0);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, RejectsWhenFullWithResourceExhausted) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.TryPush(a).ok());
  EXPECT_TRUE(queue.TryPush(b).ok());
  Status status = queue.TryPush(c);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, PopBatchPreservesFifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.TryPush(v).ok());
  }
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.PopBatch(&out, 3), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BoundedQueueTest, CloseRejectsPushesAndDrains) {
  BoundedQueue<int> queue(4);
  int v = 7;
  ASSERT_TRUE(queue.TryPush(v).ok());
  queue.Close();
  int w = 8;
  EXPECT_EQ(queue.TryPush(w).code(), StatusCode::kFailedPrecondition);
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 4), 1u);  // drains the remaining item
  EXPECT_EQ(queue.PopBatch(&out, 4), 0u);  // closed and empty
}

// ---------------------------------------------------------------------------
// RetryPolicy: deterministic exponential backoff with seeded jitter
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, SameSeedSameKeyGivesIdenticalSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.seed = 42;
  std::vector<double> a = policy.Schedule(9);
  std::vector<double> b = policy.Schedule(9);
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RetryPolicyTest, NoJitterIsPureCappedExponential) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 6.0;
  policy.jitter = 0.0;
  std::vector<double> schedule = policy.Schedule(0);
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_DOUBLE_EQ(schedule[0], 1.0);
  EXPECT_DOUBLE_EQ(schedule[1], 2.0);
  EXPECT_DOUBLE_EQ(schedule[2], 4.0);
  EXPECT_DOUBLE_EQ(schedule[3], 6.0);  // capped
  EXPECT_DOUBLE_EQ(schedule[4], 6.0);
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredFraction) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 8.0;
  policy.max_delay_ms = 8.0;
  policy.jitter = 0.5;
  for (uint64_t key = 0; key < 64; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      double d = policy.DelayMillis(key, attempt);
      EXPECT_GT(d, 4.0 - 1e-9);
      EXPECT_LE(d, 8.0);
    }
  }
}

TEST(RetryPolicyTest, DifferentSeedsChangeTheSchedule) {
  RetryPolicy a, b;
  a.seed = 1;
  b.seed = 2;
  bool any_different = false;
  for (uint64_t key = 0; key < 8 && !any_different; ++key) {
    any_different = a.DelayMillis(key, 0) != b.DelayMillis(key, 0);
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  breaker.OnFailure();
  EXPECT_FALSE(breaker.open());
  breaker.OnFailure();
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  breaker.OnSuccess();
  breaker.OnFailure();
  EXPECT_FALSE(breaker.open());  // never two in a row
}

TEST(CircuitBreakerTest, ProbesEveryNthAdmissionWhileOpen) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.probe_interval = 3;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  ASSERT_TRUE(breaker.open());
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.probes(), 1);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndCountsRecovery) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.probe_interval = 1;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  ASSERT_TRUE(breaker.open());
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.OnFailure();  // failed probe keeps it open without a new trip
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.OnSuccess();
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.recoveries(), 1);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kPrimary);
}

// ---------------------------------------------------------------------------
// FaultPoint + the new Status codes
// ---------------------------------------------------------------------------

TEST(ServeStatusTest, NewCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::ResourceExhausted("y").ToString(),
            "ResourceExhausted: y");
  EXPECT_EQ(Status::Unavailable("z").ToString(), "Unavailable: z");
}

TEST(FaultPointTest, ReturnsTheRequestedCodeWhenFiring) {
  ASSERT_TRUE(fault::EnableFromSpec("serve_test.point@1").ok());
  Status first =
      fault::FaultPoint("serve_test.point", StatusCode::kUnavailable);
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  Status second =
      fault::FaultPoint("serve_test.point", StatusCode::kUnavailable);
  EXPECT_TRUE(second.ok());
  fault::Disable();
}

TEST(FaultPointTest, SilentWhenDisabled) {
  fault::Disable();
  EXPECT_TRUE(fault::FaultPoint("serve_test.other").ok());
}

// ---------------------------------------------------------------------------
// TrustServer against scripted fake backends
// ---------------------------------------------------------------------------

/// A scripted ScoreBackend: `fn` decides each batch's fate.
class FakeBackend : public serve::ScoreBackend {
 public:
  using Fn = std::function<Result<std::vector<float>>(
      const std::vector<data::TrustPair>&, int call)>;

  explicit FakeBackend(Fn fn) : fn_(std::move(fn)) {}

  Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) override {
    return fn_(pairs, calls_++);
  }

  std::string name() const override { return "fake"; }

  int calls() const { return calls_; }

 private:
  Fn fn_;
  int calls_ = 0;
};

FakeBackend::Fn ConstantScores(float value) {
  return [value](const std::vector<data::TrustPair>& pairs, int) {
    return Result<std::vector<float>>(
        std::vector<float>(pairs.size(), value));
  };
}

ServeOptions FastOptions() {
  ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch_size = 4;
  options.retry.max_attempts = 3;
  options.sleep_on_backoff = false;  // schedules are asserted, not slept
  return options;
}

std::vector<TrustResponse> RunClosedLoop(TrustServer* server, int requests) {
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < requests; ++i) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    futures.push_back(server->Submit(q));
  }
  server->Start();
  std::vector<TrustResponse> out;
  for (auto& f : futures) out.push_back(f.get());
  server->Shutdown();
  return out;
}

TEST(TrustServerTest, ServesEveryRequestWithTheBackendScore) {
  FakeBackend backend(ConstantScores(0.75f));
  TrustServer server(FastOptions(), &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 10);
  ASSERT_EQ(responses.size(), 10u);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FLOAT_EQ(r.score, 0.75f);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.attempts, 1);
  }
  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 10);
  EXPECT_EQ(stats.ok, 10);
  EXPECT_EQ(stats.rejected + stats.expired + stats.degraded + stats.failed,
            0);
}

TEST(TrustServerTest, OverflowIsRejectedWithResourceExhausted) {
  FakeBackend backend(ConstantScores(0.5f));
  ServeOptions options = FastOptions();
  options.queue_capacity = 4;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 10);
  int rejected = 0;
  for (const TrustResponse& r : responses) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 6);
  EXPECT_EQ(server.Stats().rejected, 6);
  EXPECT_EQ(server.Stats().ok, 4);
}

TEST(TrustServerTest, ExpiredDeadlinesCompleteAsDeadlineExceeded) {
  FakeBackend backend(ConstantScores(0.5f));
  TrustServer server(FastOptions(), &backend, nullptr);
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    if (i % 2 == 0) q.deadline = Deadline::AfterMillis(0);
    futures.push_back(server.Submit(q));
  }
  server.Start();
  int expired = 0;
  for (auto& f : futures) {
    TrustResponse r = f.get();
    if (r.status.code() == StatusCode::kDeadlineExceeded) ++expired;
  }
  server.Shutdown();
  EXPECT_EQ(expired, 3);
  EXPECT_EQ(server.Stats().expired, 3);
  EXPECT_EQ(server.Stats().ok, 3);
}

TEST(TrustServerTest, TransientFailureIsRetriedToSuccess) {
  // First call fails with a transient code; the retry succeeds.
  FakeBackend backend(
      [](const std::vector<data::TrustPair>& pairs,
         int call) -> Result<std::vector<float>> {
        if (call == 0) return Status::Unavailable("flaky");
        return std::vector<float>(pairs.size(), 0.25f);
      });
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 4);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, 2);
  }
  EXPECT_EQ(server.Stats().retries, 1);
  EXPECT_EQ(backend.calls(), 2);
}

TEST(TrustServerTest, NonTransientFailureIsNotRetried) {
  FakeBackend backend(
      [](const std::vector<data::TrustPair>&,
         int) -> Result<std::vector<float>> {
        return Status::InvalidArgument("bad shape");
      });
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 2);
  for (const TrustResponse& r : responses) {
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(backend.calls(), 1);  // no retry for deterministic failures
  EXPECT_EQ(server.Stats().retries, 0);
}

TEST(TrustServerTest, ExhaustedRetriesDegradeToTheFallback) {
  FakeBackend primary(
      [](const std::vector<data::TrustPair>&,
         int) -> Result<std::vector<float>> {
        return Status::Unavailable("down");
      });
  FakeBackend fallback(ConstantScores(0.125f));
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &primary, &fallback);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 4);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.degraded);
    EXPECT_FLOAT_EQ(r.score, 0.125f);
  }
  EXPECT_EQ(server.Stats().degraded, 4);
  EXPECT_EQ(primary.calls(), 3);  // all attempts burned
}

TEST(TrustServerTest, NonFiniteScoresCountAndFailWithoutRetry) {
  FakeBackend primary(
      [](const std::vector<data::TrustPair>& pairs,
         int) -> Result<std::vector<float>> {
        std::vector<float> scores(pairs.size(), 0.5f);
        scores[0] = std::nanf("");
        return scores;
      });
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &primary, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 2);
  for (const TrustResponse& r : responses) {
    EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  }
  EXPECT_EQ(primary.calls(), 1);
  EXPECT_EQ(server.Stats().nonfinite, 1);
}

TEST(TrustServerTest, BreakerTripsDegradesAndRecoversViaProbe) {
  // The primary fails for its first 6 calls, then heals. With
  // max_attempts=1 and threshold=2 the breaker trips on the second batch;
  // probes keep testing the primary and the first healthy probe closes it.
  FakeBackend primary(
      [](const std::vector<data::TrustPair>& pairs,
         int call) -> Result<std::vector<float>> {
        if (call < 6) return Status::Unavailable("outage");
        return std::vector<float>(pairs.size(), 0.875f);
      });
  FakeBackend fallback(ConstantScores(0.0625f));
  ServeOptions options = FastOptions();
  options.max_batch_size = 1;  // one request per batch: scripted precisely
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval = 2;
  TrustServer server(options, &primary, &fallback);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 16);

  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.breaker_trips, 1);
  EXPECT_GE(stats.breaker_probes, 1);
  EXPECT_EQ(stats.breaker_recoveries, 1);
  EXPECT_GT(stats.degraded, 0);
  EXPECT_GT(stats.ok, 0);
  // Once recovered, the tail of the stream is served by the primary.
  EXPECT_TRUE(responses.back().status.ok());
  EXPECT_FALSE(responses.back().degraded);
  EXPECT_FLOAT_EQ(responses.back().score, 0.875f);
  // Degraded responses are flagged and carry the fallback's score.
  for (const TrustResponse& r : responses) {
    if (r.degraded) EXPECT_FLOAT_EQ(r.score, 0.0625f);
  }
}

TEST(TrustServerTest, ShutdownWithoutStartDrainsEveryFuture) {
  FakeBackend backend(ConstantScores(0.5f));
  TrustServer server(FastOptions(), &backend, nullptr);
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server.Submit(TrustQuery{}));
  server.Shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(TrustServerTest, SubmitAfterShutdownIsRejected) {
  FakeBackend backend(ConstantScores(0.5f));
  TrustServer server(FastOptions(), &backend, nullptr);
  server.Start();
  server.Shutdown();
  TrustResponse r = server.Submit(TrustQuery{}).get();
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// ModelBackend hot reload
// ---------------------------------------------------------------------------

/// A tiny AHNTP serving fixture shared by the reload and determinism
/// tests: generated dataset, split, training graph, features, and a
/// seeded predictor factory.
struct ServingFixture {
  data::SocialDataset dataset;
  data::TrustSplit split;
  graph::Digraph graph;
  tensor::Matrix features;

  static ServingFixture Make() {
    data::GeneratorConfig config;
    config.num_users = 60;
    config.num_items = 30;
    config.num_communities = 3;
    config.seed = 11;
    ServingFixture f;
    f.dataset = data::SocialNetworkGenerator(config).Generate();
    f.split = data::MakeSplit(f.dataset);
    auto graph = f.dataset.GraphFromEdges(f.split.train_positive);
    EXPECT_TRUE(graph.ok());
    f.graph = std::move(graph).value();
    f.features = data::BuildFeatureMatrix(f.dataset);
    return f;
  }

  serve::ModelBackend::Factory MakeFactory(uint64_t seed) const {
    models::ModelInputs inputs;
    inputs.features = &features;
    inputs.graph = &graph;
    inputs.dataset = &dataset;
    inputs.hidden_dims = {8, 4};
    return [inputs, seed]() mutable {
      Rng rng(seed);
      inputs.rng = &rng;
      auto created =
          core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
      EXPECT_TRUE(created.ok()) << created.status().ToString();
      return std::move(created).value();
    };
  }

  std::vector<data::TrustPair> Queries(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(split.test_pairs[i % split.test_pairs.size()]);
    }
    return pairs;
  }
};

TEST(ModelBackendTest, ReloadSwapsWeightsAndAdvancesGeneration) {
  ServingFixture fixture = ServingFixture::Make();
  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend backend(factory, factory());

  // Checkpoint a *different* seed's weights; reloading must change scores.
  auto other = fixture.MakeFactory(99)();
  std::string path = ::testing::TempDir() + "/serve_reload.ckpt";
  ASSERT_TRUE(nn::SaveModule(*other, path).ok());

  std::vector<data::TrustPair> queries = fixture.Queries(6);
  auto before = backend.ScoreBatch(queries);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(backend.generation(), 0);

  ASSERT_TRUE(backend.Reload(path).ok());
  EXPECT_EQ(backend.generation(), 1);
  auto after = backend.ScoreBatch(queries);
  ASSERT_TRUE(after.ok());
  auto expected = other->PredictProbabilities(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*after)[i], expected[i]) << "score " << i;
  }
  std::filesystem::remove(path);
}

TEST(ModelBackendTest, FailedReloadKeepsTheOldModelServing) {
  ServingFixture fixture = ServingFixture::Make();
  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend backend(factory, factory());
  std::vector<data::TrustPair> queries = fixture.Queries(6);
  auto before = backend.ScoreBatch(queries);
  ASSERT_TRUE(before.ok());

  Status status = backend.Reload(::testing::TempDir() + "/does_not_exist");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(backend.generation(), 0);
  auto after = backend.ScoreBatch(queries);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*before)[i], (*after)[i]);
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: same --fault_seed => bit-identical retry
// schedule, serve counters, and scores at 1, 2, and 8 threads.
// ---------------------------------------------------------------------------

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { SetNumThreads(threads); }
  ~ThreadGuard() { SetNumThreads(0); }
};

struct DeterministicRun {
  serve::ServerStats stats;
  std::vector<float> scores;
  std::vector<bool> degraded;
};

DeterministicRun RunFaultyServe(const ServingFixture& fixture, int threads) {
  ThreadGuard guard(threads);
  // Fresh spec install resets per-site hit counters, so every run replays
  // the identical fault sequence.
  fault::SetSeed(1234);
  EXPECT_TRUE(fault::EnableFromSpec("serve.infer@~0.5").ok());

  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend primary(factory, factory());
  serve::HeuristicBackend fallback(&fixture.graph,
                                   models::Heuristic::kJaccard);
  ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch_size = 4;
  options.retry.max_attempts = 2;
  options.retry.seed = 1234;
  options.sleep_on_backoff = false;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval = 2;
  TrustServer server(options, &primary, &fallback);

  std::vector<std::future<TrustResponse>> futures;
  for (const data::TrustPair& p : fixture.Queries(48)) {
    TrustQuery q;
    q.src = p.src;
    q.dst = p.dst;
    futures.push_back(server.Submit(q));
  }
  server.Start();
  DeterministicRun run;
  for (auto& f : futures) {
    TrustResponse r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    run.scores.push_back(r.score);
    run.degraded.push_back(r.degraded);
  }
  server.Shutdown();
  run.stats = server.Stats();
  fault::Disable();
  return run;
}

TEST(ServeDeterminismTest, CountersAndScoresBitIdenticalAcrossThreadCounts) {
  ServingFixture fixture = ServingFixture::Make();
  DeterministicRun r1 = RunFaultyServe(fixture, 1);
  DeterministicRun r2 = RunFaultyServe(fixture, 2);
  DeterministicRun r8 = RunFaultyServe(fixture, 8);

  for (const DeterministicRun* other : {&r2, &r8}) {
    EXPECT_EQ(r1.stats.ok, other->stats.ok);
    EXPECT_EQ(r1.stats.degraded, other->stats.degraded);
    EXPECT_EQ(r1.stats.failed, other->stats.failed);
    EXPECT_EQ(r1.stats.retries, other->stats.retries);
    EXPECT_EQ(r1.stats.batches, other->stats.batches);
    EXPECT_EQ(r1.stats.breaker_trips, other->stats.breaker_trips);
    EXPECT_EQ(r1.stats.breaker_probes, other->stats.breaker_probes);
    EXPECT_EQ(r1.stats.breaker_recoveries, other->stats.breaker_recoveries);
    ASSERT_EQ(r1.scores.size(), other->scores.size());
    EXPECT_EQ(std::memcmp(r1.scores.data(), other->scores.data(),
                          r1.scores.size() * sizeof(float)),
              0)
        << "scores must be bit-identical across thread counts";
    EXPECT_EQ(r1.degraded, other->degraded);
  }
  // The injected fault stream actually exercised the retry path.
  EXPECT_GT(r1.stats.retries, 0);
}

}  // namespace
}  // namespace ahntp
