// Tests for the online inference substrate (src/serve): bounded queue
// backpressure, cooperative deadlines, deterministic retry/backoff,
// circuit breaker trip/probe/recover with degraded fallback, checkpoint
// hot-reload, and the thread-count invariance of the whole pipeline
// (extending the tests/parallel_test.cc determinism pattern).

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/fileio.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "nn/serialization.h"
#include "serve/backend.h"
#include "serve/bounded_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/retry.h"
#include "serve/server.h"

namespace ahntp {
namespace {

using serve::BoundedQueue;
using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::RetryPolicy;
using serve::ServeOptions;
using serve::TrustQuery;
using serve::TrustResponse;
using serve::TrustServer;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingMillis()));
}

TEST(DeadlineTest, ZeroBudgetIsExpiredImmediately) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0.0);
  EXPECT_LE(d.RemainingMillis(), 60000.0);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, RejectsWhenFullWithResourceExhausted) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.TryPush(a).ok());
  EXPECT_TRUE(queue.TryPush(b).ok());
  Status status = queue.TryPush(c);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, PopBatchPreservesFifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.TryPush(v).ok());
  }
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.PopBatch(&out, 3), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BoundedQueueTest, CloseRejectsPushesAndDrains) {
  BoundedQueue<int> queue(4);
  int v = 7;
  ASSERT_TRUE(queue.TryPush(v).ok());
  queue.Close();
  int w = 8;
  EXPECT_EQ(queue.TryPush(w).code(), StatusCode::kFailedPrecondition);
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 4), 1u);  // drains the remaining item
  EXPECT_EQ(queue.PopBatch(&out, 4), 0u);  // closed and empty
}

// ---------------------------------------------------------------------------
// RetryPolicy: deterministic exponential backoff with seeded jitter
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, SameSeedSameKeyGivesIdenticalSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.seed = 42;
  std::vector<double> a = policy.Schedule(9);
  std::vector<double> b = policy.Schedule(9);
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RetryPolicyTest, NoJitterIsPureCappedExponential) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 6.0;
  policy.jitter = 0.0;
  std::vector<double> schedule = policy.Schedule(0);
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_DOUBLE_EQ(schedule[0], 1.0);
  EXPECT_DOUBLE_EQ(schedule[1], 2.0);
  EXPECT_DOUBLE_EQ(schedule[2], 4.0);
  EXPECT_DOUBLE_EQ(schedule[3], 6.0);  // capped
  EXPECT_DOUBLE_EQ(schedule[4], 6.0);
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredFraction) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 8.0;
  policy.max_delay_ms = 8.0;
  policy.jitter = 0.5;
  for (uint64_t key = 0; key < 64; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      double d = policy.DelayMillis(key, attempt);
      EXPECT_GT(d, 4.0 - 1e-9);
      EXPECT_LE(d, 8.0);
    }
  }
}

TEST(RetryPolicyTest, DifferentSeedsChangeTheSchedule) {
  RetryPolicy a, b;
  a.seed = 1;
  b.seed = 2;
  bool any_different = false;
  for (uint64_t key = 0; key < 8 && !any_different; ++key) {
    any_different = a.DelayMillis(key, 0) != b.DelayMillis(key, 0);
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  breaker.OnFailure();
  EXPECT_FALSE(breaker.open());
  breaker.OnFailure();
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  breaker.OnSuccess();
  breaker.OnFailure();
  EXPECT_FALSE(breaker.open());  // never two in a row
}

TEST(CircuitBreakerTest, ProbesEveryNthAdmissionWhileOpen) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.probe_interval = 3;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  ASSERT_TRUE(breaker.open());
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.probes(), 1);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndCountsRecovery) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.probe_interval = 1;
  CircuitBreaker breaker(options);
  breaker.OnFailure();
  ASSERT_TRUE(breaker.open());
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.OnFailure();  // failed probe keeps it open without a new trip
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.OnSuccess();
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.recoveries(), 1);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kPrimary);
}

// ---------------------------------------------------------------------------
// FaultPoint + the new Status codes
// ---------------------------------------------------------------------------

TEST(ServeStatusTest, NewCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::ResourceExhausted("y").ToString(),
            "ResourceExhausted: y");
  EXPECT_EQ(Status::Unavailable("z").ToString(), "Unavailable: z");
}

TEST(FaultPointTest, ReturnsTheRequestedCodeWhenFiring) {
  ASSERT_TRUE(fault::EnableFromSpec("serve_test.point@1").ok());
  Status first =
      fault::FaultPoint("serve_test.point", StatusCode::kUnavailable);
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  Status second =
      fault::FaultPoint("serve_test.point", StatusCode::kUnavailable);
  EXPECT_TRUE(second.ok());
  fault::Disable();
}

TEST(FaultPointTest, SilentWhenDisabled) {
  fault::Disable();
  EXPECT_TRUE(fault::FaultPoint("serve_test.other").ok());
}

// ---------------------------------------------------------------------------
// TrustServer against scripted fake backends
// ---------------------------------------------------------------------------

/// A scripted ScoreBackend: `fn` decides each batch's fate.
class FakeBackend : public serve::ScoreBackend {
 public:
  using Fn = std::function<Result<std::vector<float>>(
      const std::vector<data::TrustPair>&, int call)>;

  explicit FakeBackend(Fn fn) : fn_(std::move(fn)) {}

  Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) override {
    return fn_(pairs, calls_++);
  }

  std::string name() const override { return "fake"; }

  int64_t generation() const override { return generation_; }
  void set_generation(int64_t generation) { generation_ = generation; }

  int calls() const { return calls_; }

 private:
  Fn fn_;
  int calls_ = 0;
  std::atomic<int64_t> generation_{0};
};

FakeBackend::Fn ConstantScores(float value) {
  return [value](const std::vector<data::TrustPair>& pairs, int) {
    return Result<std::vector<float>>(
        std::vector<float>(pairs.size(), value));
  };
}

ServeOptions FastOptions() {
  ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch_size = 4;
  options.retry.max_attempts = 3;
  options.sleep_on_backoff = false;  // schedules are asserted, not slept
  return options;
}

std::vector<TrustResponse> RunClosedLoop(TrustServer* server, int requests) {
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < requests; ++i) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    futures.push_back(server->Submit(q));
  }
  server->Start();
  std::vector<TrustResponse> out;
  for (auto& f : futures) out.push_back(f.get());
  server->Shutdown();
  return out;
}

TEST(TrustServerTest, ServesEveryRequestWithTheBackendScore) {
  FakeBackend backend(ConstantScores(0.75f));
  TrustServer server(FastOptions(), &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 10);
  ASSERT_EQ(responses.size(), 10u);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FLOAT_EQ(r.score, 0.75f);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.attempts, 1);
  }
  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 10);
  EXPECT_EQ(stats.ok, 10);
  EXPECT_EQ(stats.rejected + stats.expired + stats.degraded + stats.failed,
            0);
}

TEST(TrustServerTest, OverflowIsRejectedWithResourceExhausted) {
  FakeBackend backend(ConstantScores(0.5f));
  ServeOptions options = FastOptions();
  options.queue_capacity = 4;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 10);
  int rejected = 0;
  for (const TrustResponse& r : responses) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 6);
  EXPECT_EQ(server.Stats().rejected, 6);
  EXPECT_EQ(server.Stats().ok, 4);
}

TEST(TrustServerTest, ExpiredDeadlinesCompleteAsDeadlineExceeded) {
  FakeBackend backend(ConstantScores(0.5f));
  TrustServer server(FastOptions(), &backend, nullptr);
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    if (i % 2 == 0) q.deadline = Deadline::AfterMillis(0);
    futures.push_back(server.Submit(q));
  }
  server.Start();
  int expired = 0;
  for (auto& f : futures) {
    TrustResponse r = f.get();
    if (r.status.code() == StatusCode::kDeadlineExceeded) ++expired;
  }
  server.Shutdown();
  EXPECT_EQ(expired, 3);
  EXPECT_EQ(server.Stats().expired, 3);
  EXPECT_EQ(server.Stats().ok, 3);
}

TEST(TrustServerTest, TransientFailureIsRetriedToSuccess) {
  // First call fails with a transient code; the retry succeeds.
  FakeBackend backend(
      [](const std::vector<data::TrustPair>& pairs,
         int call) -> Result<std::vector<float>> {
        if (call == 0) return Status::Unavailable("flaky");
        return std::vector<float>(pairs.size(), 0.25f);
      });
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 4);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, 2);
  }
  EXPECT_EQ(server.Stats().retries, 1);
  EXPECT_EQ(backend.calls(), 2);
}

TEST(TrustServerTest, NonTransientFailureIsNotRetried) {
  FakeBackend backend(
      [](const std::vector<data::TrustPair>&,
         int) -> Result<std::vector<float>> {
        return Status::InvalidArgument("bad shape");
      });
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 2);
  for (const TrustResponse& r : responses) {
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(backend.calls(), 1);  // no retry for deterministic failures
  EXPECT_EQ(server.Stats().retries, 0);
}

TEST(TrustServerTest, ExhaustedRetriesDegradeToTheFallback) {
  FakeBackend primary(
      [](const std::vector<data::TrustPair>&,
         int) -> Result<std::vector<float>> {
        return Status::Unavailable("down");
      });
  FakeBackend fallback(ConstantScores(0.125f));
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &primary, &fallback);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 4);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.degraded);
    EXPECT_FLOAT_EQ(r.score, 0.125f);
  }
  EXPECT_EQ(server.Stats().degraded, 4);
  EXPECT_EQ(primary.calls(), 3);  // all attempts burned
}

TEST(TrustServerTest, NonFiniteScoresCountAndFailWithoutRetry) {
  FakeBackend primary(
      [](const std::vector<data::TrustPair>& pairs,
         int) -> Result<std::vector<float>> {
        std::vector<float> scores(pairs.size(), 0.5f);
        scores[0] = std::nanf("");
        return scores;
      });
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  TrustServer server(options, &primary, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 2);
  for (const TrustResponse& r : responses) {
    EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  }
  EXPECT_EQ(primary.calls(), 1);
  EXPECT_EQ(server.Stats().nonfinite, 1);
}

TEST(TrustServerTest, BreakerTripsDegradesAndRecoversViaProbe) {
  // The primary fails for its first 6 calls, then heals. With
  // max_attempts=1 and threshold=2 the breaker trips on the second batch;
  // probes keep testing the primary and the first healthy probe closes it.
  FakeBackend primary(
      [](const std::vector<data::TrustPair>& pairs,
         int call) -> Result<std::vector<float>> {
        if (call < 6) return Status::Unavailable("outage");
        return std::vector<float>(pairs.size(), 0.875f);
      });
  FakeBackend fallback(ConstantScores(0.0625f));
  ServeOptions options = FastOptions();
  options.max_batch_size = 1;  // one request per batch: scripted precisely
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval = 2;
  TrustServer server(options, &primary, &fallback);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 16);

  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.breaker_trips, 1);
  EXPECT_GE(stats.breaker_probes, 1);
  EXPECT_EQ(stats.breaker_recoveries, 1);
  EXPECT_GT(stats.degraded, 0);
  EXPECT_GT(stats.ok, 0);
  // Once recovered, the tail of the stream is served by the primary.
  EXPECT_TRUE(responses.back().status.ok());
  EXPECT_FALSE(responses.back().degraded);
  EXPECT_FLOAT_EQ(responses.back().score, 0.875f);
  // Degraded responses are flagged and carry the fallback's score.
  for (const TrustResponse& r : responses) {
    if (r.degraded) EXPECT_FLOAT_EQ(r.score, 0.0625f);
  }
}

TEST(TrustServerTest, ShutdownWithoutStartDrainsEveryFuture) {
  FakeBackend backend(ConstantScores(0.5f));
  TrustServer server(FastOptions(), &backend, nullptr);
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server.Submit(TrustQuery{}));
  server.Shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(TrustServerTest, SubmitAfterShutdownIsRejected) {
  FakeBackend backend(ConstantScores(0.5f));
  TrustServer server(FastOptions(), &backend, nullptr);
  server.Start();
  server.Shutdown();
  TrustResponse r = server.Submit(TrustQuery{}).get();
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// ModelBackend hot reload
// ---------------------------------------------------------------------------

/// A tiny AHNTP serving fixture shared by the reload and determinism
/// tests: generated dataset, split, training graph, features, and a
/// seeded predictor factory.
struct ServingFixture {
  data::SocialDataset dataset;
  data::TrustSplit split;
  graph::Digraph graph;
  tensor::Matrix features;

  static ServingFixture Make() {
    data::GeneratorConfig config;
    config.num_users = 60;
    config.num_items = 30;
    config.num_communities = 3;
    config.seed = 11;
    ServingFixture f;
    f.dataset = data::SocialNetworkGenerator(config).Generate();
    f.split = data::MakeSplit(f.dataset);
    auto graph = f.dataset.GraphFromEdges(f.split.train_positive);
    EXPECT_TRUE(graph.ok());
    f.graph = std::move(graph).value();
    f.features = data::BuildFeatureMatrix(f.dataset);
    return f;
  }

  serve::ModelBackend::Factory MakeFactory(uint64_t seed) const {
    models::ModelInputs inputs;
    inputs.features = &features;
    inputs.graph = &graph;
    inputs.dataset = &dataset;
    inputs.hidden_dims = {8, 4};
    return [inputs, seed]() mutable {
      Rng rng(seed);
      inputs.rng = &rng;
      auto created =
          core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
      EXPECT_TRUE(created.ok()) << created.status().ToString();
      return std::move(created).value();
    };
  }

  std::vector<data::TrustPair> Queries(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(split.test_pairs[i % split.test_pairs.size()]);
    }
    return pairs;
  }
};

TEST(ModelBackendTest, ReloadSwapsWeightsAndAdvancesGeneration) {
  ServingFixture fixture = ServingFixture::Make();
  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend backend(factory, factory());

  // Checkpoint a *different* seed's weights; reloading must change scores.
  auto other = fixture.MakeFactory(99)();
  std::string path = ::testing::TempDir() + "/serve_reload.ckpt";
  ASSERT_TRUE(nn::SaveModule(*other, path).ok());

  std::vector<data::TrustPair> queries = fixture.Queries(6);
  auto before = backend.ScoreBatch(queries);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(backend.generation(), 0);

  ASSERT_TRUE(backend.Reload(path).ok());
  EXPECT_EQ(backend.generation(), 1);
  auto after = backend.ScoreBatch(queries);
  ASSERT_TRUE(after.ok());
  auto expected = other->PredictProbabilities(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*after)[i], expected[i]) << "score " << i;
  }
  std::filesystem::remove(path);
}

TEST(ModelBackendTest, FailedReloadKeepsTheOldModelServing) {
  ServingFixture fixture = ServingFixture::Make();
  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend backend(factory, factory());
  std::vector<data::TrustPair> queries = fixture.Queries(6);
  auto before = backend.ScoreBatch(queries);
  ASSERT_TRUE(before.ok());

  Status status = backend.Reload(::testing::TempDir() + "/does_not_exist");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(backend.generation(), 0);
  auto after = backend.ScoreBatch(queries);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*before)[i], (*after)[i]);
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: same --fault_seed => bit-identical retry
// schedule, serve counters, and scores at 1, 2, and 8 threads.
// ---------------------------------------------------------------------------

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { SetNumThreads(threads); }
  ~ThreadGuard() { SetNumThreads(0); }
};

struct DeterministicRun {
  serve::ServerStats stats;
  std::vector<float> scores;
  std::vector<bool> degraded;
};

DeterministicRun RunFaultyServe(const ServingFixture& fixture, int threads) {
  ThreadGuard guard(threads);
  // Fresh spec install resets per-site hit counters, so every run replays
  // the identical fault sequence.
  fault::SetSeed(1234);
  EXPECT_TRUE(fault::EnableFromSpec("serve.infer@~0.5").ok());

  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend primary(factory, factory());
  serve::HeuristicBackend fallback(&fixture.graph,
                                   models::Heuristic::kJaccard);
  ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch_size = 4;
  options.retry.max_attempts = 2;
  options.retry.seed = 1234;
  options.sleep_on_backoff = false;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval = 2;
  TrustServer server(options, &primary, &fallback);

  std::vector<std::future<TrustResponse>> futures;
  for (const data::TrustPair& p : fixture.Queries(48)) {
    TrustQuery q;
    q.src = p.src;
    q.dst = p.dst;
    futures.push_back(server.Submit(q));
  }
  server.Start();
  DeterministicRun run;
  for (auto& f : futures) {
    TrustResponse r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    run.scores.push_back(r.score);
    run.degraded.push_back(r.degraded);
  }
  server.Shutdown();
  run.stats = server.Stats();
  fault::Disable();
  return run;
}

TEST(ServeDeterminismTest, CountersAndScoresBitIdenticalAcrossThreadCounts) {
  ServingFixture fixture = ServingFixture::Make();
  DeterministicRun r1 = RunFaultyServe(fixture, 1);
  DeterministicRun r2 = RunFaultyServe(fixture, 2);
  DeterministicRun r8 = RunFaultyServe(fixture, 8);

  for (const DeterministicRun* other : {&r2, &r8}) {
    EXPECT_EQ(r1.stats.ok, other->stats.ok);
    EXPECT_EQ(r1.stats.degraded, other->stats.degraded);
    EXPECT_EQ(r1.stats.failed, other->stats.failed);
    EXPECT_EQ(r1.stats.retries, other->stats.retries);
    EXPECT_EQ(r1.stats.batches, other->stats.batches);
    EXPECT_EQ(r1.stats.breaker_trips, other->stats.breaker_trips);
    EXPECT_EQ(r1.stats.breaker_probes, other->stats.breaker_probes);
    EXPECT_EQ(r1.stats.breaker_recoveries, other->stats.breaker_recoveries);
    ASSERT_EQ(r1.scores.size(), other->scores.size());
    EXPECT_EQ(std::memcmp(r1.scores.data(), other->scores.data(),
                          r1.scores.size() * sizeof(float)),
              0)
        << "scores must be bit-identical across thread counts";
    EXPECT_EQ(r1.degraded, other->degraded);
  }
  // The injected fault stream actually exercised the retry path.
  EXPECT_GT(r1.stats.retries, 0);
}

// ---------------------------------------------------------------------------
// AdmissionController: lane limits, reservation, downgrade pressure
// ---------------------------------------------------------------------------

using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::Lane;

TEST(AdmissionControllerTest, DefaultsResolveFromCapacityAndReserve) {
  AdmissionOptions options;
  options.queue_capacity = 16;
  options.strict_reserve = 4;
  AdmissionController admission(options);
  EXPECT_EQ(admission.LimitFor(Lane::kStrict), 16u);
  EXPECT_EQ(admission.LimitFor(Lane::kDegradedEligible), 12u);
  EXPECT_EQ(admission.LimitFor(Lane::kBesteffort), 6u);  // (12 + 1) / 2
  EXPECT_EQ(admission.resolved().degrade_pressure, 6u);
}

TEST(AdmissionControllerTest, ReserveClampsToCapacity) {
  AdmissionOptions options;
  options.queue_capacity = 8;
  options.strict_reserve = 100;
  AdmissionController admission(options);
  EXPECT_EQ(admission.LimitFor(Lane::kStrict), 8u);
  EXPECT_EQ(admission.LimitFor(Lane::kDegradedEligible), 0u);
  EXPECT_EQ(admission.LimitFor(Lane::kBesteffort), 0u);
}

TEST(AdmissionControllerTest, DowngradeOnlyForDegradedLaneUnderPressure) {
  AdmissionOptions options;
  options.queue_capacity = 8;
  options.degrade_pressure = 4;
  AdmissionController admission(options);
  EXPECT_FALSE(admission.ShouldDowngrade(Lane::kDegradedEligible, 3));
  EXPECT_TRUE(admission.ShouldDowngrade(Lane::kDegradedEligible, 4));
  EXPECT_FALSE(admission.ShouldDowngrade(Lane::kStrict, 7));
  EXPECT_FALSE(admission.ShouldDowngrade(Lane::kBesteffort, 7));
}

TEST(AdmissionControllerTest, LaneNamesRoundTrip) {
  for (Lane lane : {Lane::kStrict, Lane::kDegradedEligible,
                    Lane::kBesteffort}) {
    Lane parsed;
    ASSERT_TRUE(serve::LaneFromString(serve::LaneName(lane), &parsed));
    EXPECT_EQ(parsed, lane);
  }
  Lane ignored;
  EXPECT_FALSE(serve::LaneFromString("premium", &ignored));
}

// ---------------------------------------------------------------------------
// ScoreCache: LRU semantics and generation keying
// ---------------------------------------------------------------------------

using serve::ScoreCache;
using serve::ScoreKey;

TEST(ScoreCacheTest, HitReturnsCachedScoreMissReturnsNothing) {
  ScoreCache cache(4);
  cache.Put({1, 2, 0}, 0.5f, 0.9f);
  auto hit = cache.Get({1, 2, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FLOAT_EQ(hit->score, 0.5f);
  EXPECT_FLOAT_EQ(hit->confidence, 0.9f);
  EXPECT_FALSE(cache.Get({2, 1, 0}).has_value());
}

TEST(ScoreCacheTest, GenerationIsPartOfTheKey) {
  ScoreCache cache(4);
  cache.Put({1, 2, 0}, 0.5f);
  EXPECT_FALSE(cache.Get({1, 2, 1}).has_value())
      << "a generation bump must make the old score unreachable";
}

TEST(ScoreCacheTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  ScoreCache cache(2);
  cache.Put({1, 0, 0}, 0.1f);
  cache.Put({2, 0, 0}, 0.2f);
  ASSERT_TRUE(cache.Get({1, 0, 0}).has_value());  // 1 is now most recent
  cache.Put({3, 0, 0}, 0.3f);                     // evicts 2
  EXPECT_TRUE(cache.Get({1, 0, 0}).has_value());
  EXPECT_FALSE(cache.Get({2, 0, 0}).has_value());
  EXPECT_TRUE(cache.Get({3, 0, 0}).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScoreCacheTest, FlushDropsEverythingAndReportsCount) {
  ScoreCache cache(8);
  cache.Put({1, 0, 0}, 0.1f);
  cache.Put({2, 0, 0}, 0.2f);
  EXPECT_EQ(cache.Flush(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get({1, 0, 0}).has_value());
}

// ---------------------------------------------------------------------------
// CircuitBreaker gauge state
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, StateTracksProbeLifecycle) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.probe_interval = 2;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.OnFailure();  // failed probe: open again, no longer half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_EQ(breaker.Admit(), CircuitBreaker::Decision::kFallback);
  ASSERT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(TrustServerTest, BreakerStateGaugeExported) {
  metrics::Reset();
  metrics::Enable();
  FakeBackend primary(
      [](const std::vector<data::TrustPair>&,
         int) -> Result<std::vector<float>> {
        return Status::Unavailable("down");
      });
  FakeBackend fallback(ConstantScores(0.25f));
  ServeOptions options = FastOptions();
  options.max_batch_size = 1;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.probe_interval = 8;
  TrustServer server(options, &primary, &fallback);
  RunClosedLoop(&server, 4);
  metrics::Snapshot snapshot = metrics::Collect();
  double state = -1.0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "serve.breaker_state") state = gauge.value;
  }
  EXPECT_EQ(state, 1.0) << "breaker tripped open must publish state=1";
  EXPECT_GE(snapshot.CounterValue("serve.breaker_trips", 0), 1);
  metrics::Disable();
}

// ---------------------------------------------------------------------------
// Priority admission lanes
// ---------------------------------------------------------------------------

TEST(TrustServerLaneTest, BesteffortShedsFirstStrictHoldsTheReservation) {
  FakeBackend backend(ConstantScores(0.5f));
  ServeOptions options = FastOptions();
  options.queue_capacity = 8;
  options.admission.strict_reserve = 2;
  // Resolved: besteffort_limit = 3, degraded limit = 6, strict limit = 8.
  TrustServer server(options, &backend, nullptr);

  std::vector<std::future<TrustResponse>> futures;
  auto submit = [&](int i, Lane lane) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    q.lane = lane;
    futures.push_back(server.Submit(q));
  };
  int i = 0;
  for (int k = 0; k < 4; ++k) submit(i++, Lane::kBesteffort);
  for (int k = 0; k < 6; ++k) submit(i++, Lane::kDegradedEligible);
  for (int k = 0; k < 4; ++k) submit(i++, Lane::kStrict);
  server.Start();
  for (auto& f : futures) f.get();
  server.Shutdown();

  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.lane_admitted[static_cast<int>(Lane::kBesteffort)], 3);
  EXPECT_EQ(stats.lane_rejected[static_cast<int>(Lane::kBesteffort)], 1);
  EXPECT_EQ(stats.lane_admitted[static_cast<int>(Lane::kDegradedEligible)], 3);
  EXPECT_EQ(stats.lane_rejected[static_cast<int>(Lane::kDegradedEligible)], 3);
  // Only strict traffic may use the last `strict_reserve` slots.
  EXPECT_EQ(stats.lane_admitted[static_cast<int>(Lane::kStrict)], 2);
  EXPECT_EQ(stats.lane_rejected[static_cast<int>(Lane::kStrict)], 2);
  EXPECT_EQ(stats.rejected, 6);
}

TEST(TrustServerLaneTest, DegradedEligibleDowngradesUnderPressure) {
  FakeBackend primary(ConstantScores(0.75f));
  FakeBackend fallback(ConstantScores(0.25f));
  ServeOptions options = FastOptions();
  options.queue_capacity = 8;
  options.max_batch_size = 8;
  // Resolved: degrade_pressure = besteffort_limit = 4.
  TrustServer server(options, &primary, &fallback);

  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    q.lane = Lane::kDegradedEligible;
    futures.push_back(server.Submit(q));
  }
  server.Start();
  std::vector<TrustResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());
  server.Shutdown();

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(responses[i].status.ok());
    if (i < 4) {
      EXPECT_FALSE(responses[i].degraded) << "request " << i;
      EXPECT_FLOAT_EQ(responses[i].score, 0.75f);
    } else {
      EXPECT_TRUE(responses[i].degraded)
          << "request " << i << " arrived above the pressure threshold";
      EXPECT_FLOAT_EQ(responses[i].score, 0.25f);
    }
  }
  EXPECT_EQ(server.Stats().downgraded, 4);
  EXPECT_EQ(server.Stats().degraded, 4);
  EXPECT_EQ(server.Stats().ok, 4);
}

TEST(TrustServerLaneTest, DowngradeIsIgnoredWithoutAFallback) {
  FakeBackend primary(ConstantScores(0.75f));
  ServeOptions options = FastOptions();
  options.queue_capacity = 8;
  options.max_batch_size = 8;
  TrustServer server(options, &primary, nullptr);
  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    TrustQuery q;
    q.src = i;
    q.dst = i + 1;
    q.lane = Lane::kDegradedEligible;
    futures.push_back(server.Submit(q));
  }
  server.Start();
  for (auto& f : futures) {
    TrustResponse r = f.get();
    EXPECT_TRUE(r.status.ok());
    EXPECT_FALSE(r.degraded);
    EXPECT_FLOAT_EQ(r.score, 0.75f);
  }
  server.Shutdown();
  EXPECT_EQ(server.Stats().downgraded, 0);
}

// ---------------------------------------------------------------------------
// Request coalescing
// ---------------------------------------------------------------------------

TEST(CoalescingTest, DuplicatesAttachToOneLeaderAndOneBackendCall) {
  FakeBackend backend(ConstantScores(0.625f));
  ServeOptions options = FastOptions();
  options.coalesce = true;
  options.max_batch_size = 8;
  TrustServer server(options, &backend, nullptr);

  std::vector<std::future<TrustResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    TrustQuery q;
    q.src = 3;
    q.dst = 4;
    futures.push_back(server.Submit(q));
  }
  EXPECT_EQ(server.queue_depth(), 1u) << "duplicates must not occupy slots";
  server.Start();
  int coalesced = 0;
  for (auto& f : futures) {
    TrustResponse r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FLOAT_EQ(r.score, 0.625f);
    if (r.coalesced) ++coalesced;
  }
  server.Shutdown();
  EXPECT_EQ(coalesced, 7);
  EXPECT_EQ(backend.calls(), 1) << "one inference serves all duplicates";
  EXPECT_EQ(server.Stats().coalesced, 7);
  EXPECT_EQ(server.Stats().ok, 8);
}

TEST(CoalescingTest, DistinctPairsDoNotCoalesce) {
  FakeBackend backend(ConstantScores(0.5f));
  ServeOptions options = FastOptions();
  options.coalesce = true;
  TrustServer server(options, &backend, nullptr);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 6);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_FALSE(r.coalesced);
  }
  EXPECT_EQ(server.Stats().coalesced, 0);
}

TEST(CoalescingTest, FollowerDeadlineExpiryDoesNotCancelTheLeader) {
  FakeBackend backend(ConstantScores(0.5f));
  ServeOptions options = FastOptions();
  options.coalesce = true;
  TrustServer server(options, &backend, nullptr);

  TrustQuery leader;
  leader.src = 1;
  leader.dst = 2;
  std::future<TrustResponse> leader_future = server.Submit(leader);

  TrustQuery follower = leader;
  follower.deadline = Deadline::AfterMillis(0);  // expired while coalesced
  std::future<TrustResponse> follower_future = server.Submit(follower);

  server.Start();
  TrustResponse leader_response = leader_future.get();
  TrustResponse follower_response = follower_future.get();
  server.Shutdown();

  EXPECT_TRUE(leader_response.status.ok())
      << "an expired follower must not cancel its leader";
  EXPECT_FLOAT_EQ(leader_response.score, 0.5f);
  EXPECT_EQ(follower_response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(follower_response.coalesced);
  EXPECT_EQ(backend.calls(), 1);
  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.coalesced_expired, 1);
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.ok, 1);
}

// ---------------------------------------------------------------------------
// Generation-keyed score cache behind the server
// ---------------------------------------------------------------------------

TEST(ServerScoreCacheTest, RepeatWaveIsServedFromASharedCache) {
  FakeBackend backend(ConstantScores(0.375f));
  ScoreCache cache(64);
  ServeOptions options = FastOptions();
  options.shared_score_cache = &cache;

  {
    TrustServer first(options, &backend, nullptr);
    std::vector<TrustResponse> wave = RunClosedLoop(&first, 6);
    for (const TrustResponse& r : wave) EXPECT_FALSE(r.cached);
    EXPECT_EQ(first.Stats().cache_hits, 0);
    EXPECT_EQ(first.Stats().cache_misses, 6);
  }
  const int calls_after_first = backend.calls();

  TrustServer second(options, &backend, nullptr);
  std::vector<TrustResponse> wave = RunClosedLoop(&second, 6);
  for (const TrustResponse& r : wave) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.cached);
    EXPECT_FLOAT_EQ(r.score, 0.375f);
  }
  EXPECT_EQ(backend.calls(), calls_after_first)
      << "a repeat wave must not touch the backend";
  EXPECT_EQ(second.Stats().cache_hits, 6);
  EXPECT_EQ(second.Stats().ok, 6);
}

TEST(ServerScoreCacheTest, GenerationBumpFlushesAndRescores) {
  FakeBackend backend(ConstantScores(0.875f));
  ServeOptions options = FastOptions();
  options.score_cache_entries = 16;
  TrustServer server(options, &backend, nullptr);
  server.Start();

  TrustQuery q;
  q.src = 7;
  q.dst = 8;
  TrustResponse first = server.Submit(q).get();
  EXPECT_FALSE(first.cached);
  TrustResponse second = server.Submit(q).get();
  EXPECT_TRUE(second.cached) << "repeat lookup within a generation hits";

  backend.set_generation(1);  // as after a hot reload or retrain
  TrustResponse third = server.Submit(q).get();
  EXPECT_FALSE(third.cached)
      << "a generation bump must invalidate the cached score";
  server.Shutdown();

  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache_flushes, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(backend.calls(), 2);
}

TEST(ServerScoreCacheTest, DegradedScoresAreNeverCached) {
  FakeBackend primary(
      [](const std::vector<data::TrustPair>&,
         int) -> Result<std::vector<float>> {
        return Status::Unavailable("down");
      });
  FakeBackend fallback(ConstantScores(0.125f));
  ServeOptions options = FastOptions();
  options.max_batch_size = 8;
  options.score_cache_entries = 16;
  TrustServer server(options, &primary, &fallback);
  std::vector<TrustResponse> responses = RunClosedLoop(&server, 4);
  for (const TrustResponse& r : responses) {
    EXPECT_TRUE(r.degraded);
    EXPECT_FALSE(r.cached);
  }
  EXPECT_EQ(server.Stats().cache_hits, 0)
      << "fallback answers must never be served as cached model scores";
}

// ---------------------------------------------------------------------------
// Overload-control determinism: lanes + coalescing + cache under faults,
// bit-identical at 1, 2, and 8 threads.
// ---------------------------------------------------------------------------

struct OverloadRun {
  serve::ServerStats stats;
  std::vector<int> codes;
  std::vector<float> scores;
  std::vector<bool> degraded, cached, coalesced;
};

OverloadRun RunOverloadServe(const ServingFixture& fixture, int threads) {
  ThreadGuard guard(threads);
  fault::SetSeed(4321);
  EXPECT_TRUE(fault::EnableFromSpec("serve.infer@~0.5").ok());

  auto factory = fixture.MakeFactory(5);
  serve::ModelBackend primary(factory, factory());
  serve::HeuristicBackend fallback(&fixture.graph,
                                   models::Heuristic::kJaccard);
  ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch_size = 4;
  options.retry.max_attempts = 2;
  options.retry.seed = 4321;
  options.sleep_on_backoff = false;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval = 2;
  options.admission.strict_reserve = 8;
  options.coalesce = true;
  options.score_cache_entries = 128;
  TrustServer server(options, &primary, &fallback);

  std::vector<data::TrustPair> queries = fixture.Queries(96);
  std::vector<std::future<TrustResponse>> futures;
  for (size_t i = 0; i < queries.size(); ++i) {
    // A hot key every 5th request plus a three-way lane rotation: the mix
    // exercises shedding, downgrade, and coalescing in one stream.
    const data::TrustPair& p = i % 5 == 0 ? queries[0] : queries[i];
    TrustQuery q;
    q.src = p.src;
    q.dst = p.dst;
    q.lane = static_cast<Lane>(i % serve::kNumLanes);
    futures.push_back(server.Submit(q));
  }
  server.Start();
  OverloadRun run;
  for (auto& f : futures) {
    TrustResponse r = f.get();
    run.codes.push_back(static_cast<int>(r.status.code()));
    run.scores.push_back(r.status.ok() ? r.score : -1.0f);
    run.degraded.push_back(r.degraded);
    run.cached.push_back(r.cached);
    run.coalesced.push_back(r.coalesced);
  }
  server.Shutdown();
  run.stats = server.Stats();
  fault::Disable();
  return run;
}

TEST(ServeDeterminismTest, OverloadControlBitIdenticalAcrossThreadCounts) {
  ServingFixture fixture = ServingFixture::Make();
  OverloadRun r1 = RunOverloadServe(fixture, 1);
  OverloadRun r2 = RunOverloadServe(fixture, 2);
  OverloadRun r8 = RunOverloadServe(fixture, 8);

  for (const OverloadRun* other : {&r2, &r8}) {
    EXPECT_EQ(r1.stats.ok, other->stats.ok);
    EXPECT_EQ(r1.stats.degraded, other->stats.degraded);
    EXPECT_EQ(r1.stats.failed, other->stats.failed);
    EXPECT_EQ(r1.stats.rejected, other->stats.rejected);
    EXPECT_EQ(r1.stats.retries, other->stats.retries);
    EXPECT_EQ(r1.stats.batches, other->stats.batches);
    EXPECT_EQ(r1.stats.downgraded, other->stats.downgraded);
    EXPECT_EQ(r1.stats.coalesced, other->stats.coalesced);
    EXPECT_EQ(r1.stats.cache_hits, other->stats.cache_hits);
    EXPECT_EQ(r1.stats.cache_misses, other->stats.cache_misses);
    for (int lane = 0; lane < serve::kNumLanes; ++lane) {
      EXPECT_EQ(r1.stats.lane_admitted[lane], other->stats.lane_admitted[lane]);
      EXPECT_EQ(r1.stats.lane_rejected[lane], other->stats.lane_rejected[lane]);
    }
    EXPECT_EQ(r1.codes, other->codes);
    ASSERT_EQ(r1.scores.size(), other->scores.size());
    EXPECT_EQ(std::memcmp(r1.scores.data(), other->scores.data(),
                          r1.scores.size() * sizeof(float)),
              0)
        << "scores must be bit-identical across thread counts";
    EXPECT_EQ(r1.degraded, other->degraded);
    EXPECT_EQ(r1.cached, other->cached);
    EXPECT_EQ(r1.coalesced, other->coalesced);
  }
  // The stream actually exercised the overload-control machinery.
  EXPECT_GT(r1.stats.coalesced, 0);
  EXPECT_GT(r1.stats.cache_hits + r1.stats.cache_misses, 0);
}

}  // namespace
}  // namespace ahntp
