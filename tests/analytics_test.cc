// Tests for graph analytics and hypergraph expansions.

#include <gtest/gtest.h>

#include "graph/analytics.h"
#include "hypergraph/expansions.h"

namespace ahntp {
namespace {

graph::Digraph MakeGraph(size_t n, std::vector<graph::Edge> edges) {
  auto g = graph::Digraph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.value();
}

// ---------------------------------------------------------------------------
// Clustering coefficient
// ---------------------------------------------------------------------------

TEST(ClusteringTest, TriangleIsFullyClustered) {
  graph::Digraph g = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  for (int u = 0; u < 3; ++u) {
    EXPECT_DOUBLE_EQ(graph::LocalClusteringCoefficient(g, u), 1.0);
  }
  EXPECT_DOUBLE_EQ(graph::AverageClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(graph::LocalClusteringCoefficient(g, 0), 0.0);
  EXPECT_DOUBLE_EQ(graph::LocalClusteringCoefficient(g, 1), 0.0);  // deg 1
}

TEST(ClusteringTest, PartialTriangle) {
  // 0's neighbours {1,2,3}; only pair (1,2) connected: 1/3.
  graph::Digraph g = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_NEAR(graph::LocalClusteringCoefficient(g, 0), 1.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

TEST(ComponentsTest, SeparatesIslands) {
  graph::Digraph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  graph::ComponentResult result = graph::ConnectedComponents(g);
  EXPECT_EQ(result.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(result.largest_size, 3u);
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
  EXPECT_NE(result.component[3], result.component[5]);
}

TEST(ComponentsTest, DirectionIgnored) {
  graph::Digraph g = MakeGraph(3, {{1, 0}, {1, 2}});
  EXPECT_EQ(graph::ConnectedComponents(g).num_components, 1u);
}

TEST(ComponentsTest, EmptyGraphAllSingletons) {
  graph::Digraph g = MakeGraph(4, {});
  graph::ComponentResult result = graph::ConnectedComponents(g);
  EXPECT_EQ(result.num_components, 4u);
  EXPECT_EQ(result.largest_size, 1u);
}

// ---------------------------------------------------------------------------
// Degree stats / density
// ---------------------------------------------------------------------------

TEST(DegreeStatsTest, StarGraph) {
  graph::Digraph g = MakeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  graph::DegreeStats stats = graph::ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.median, 1.0);
  EXPECT_GT(stats.gini, 0.2);  // hub concentration
}

TEST(DegreeStatsTest, RegularGraphHasZeroGini) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  graph::DegreeStats stats = graph::ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, stats.max);
  EXPECT_NEAR(stats.gini, 0.0, 1e-9);
}

TEST(DensityTest, CompleteAndEmpty) {
  graph::Digraph complete =
      MakeGraph(3, {{0, 1}, {1, 0}, {0, 2}, {2, 0}, {1, 2}, {2, 1}});
  EXPECT_DOUBLE_EQ(graph::EdgeDensity(complete), 1.0);
  graph::Digraph empty = MakeGraph(3, {});
  EXPECT_DOUBLE_EQ(graph::EdgeDensity(empty), 0.0);
}

// ---------------------------------------------------------------------------
// K-core decomposition
// ---------------------------------------------------------------------------

TEST(CoreNumbersTest, TrianglePlusPendant) {
  // Triangle {0,1,2} is a 2-core; pendant 3 hangs off node 0 (1-core).
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  std::vector<int> core = graph::CoreNumbers(g);
  EXPECT_EQ(core[0], 2);
  EXPECT_EQ(core[1], 2);
  EXPECT_EQ(core[2], 2);
  EXPECT_EQ(core[3], 1);
}

TEST(CoreNumbersTest, PathGraphIsOneCore) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  for (int c : graph::CoreNumbers(g)) EXPECT_EQ(c, 1);
}

TEST(CoreNumbersTest, CompleteGraphIsNMinusOneCore) {
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  graph::Digraph g = MakeGraph(5, edges);
  for (int c : graph::CoreNumbers(g)) EXPECT_EQ(c, 4);
}

TEST(CoreNumbersTest, IsolatedNodesAreZeroCore) {
  graph::Digraph g = MakeGraph(3, {{0, 1}});
  std::vector<int> core = graph::CoreNumbers(g);
  EXPECT_EQ(core[2], 0);
  EXPECT_EQ(core[0], 1);
}

TEST(CoreNumbersTest, NestedCores) {
  // Complete K4 on {0,1,2,3} (3-core); {4,5} each connect to two K4 nodes
  // (2-core); 6 hangs off 4 (1-core).
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) edges.push_back({i, j});
  }
  edges.push_back({4, 0});
  edges.push_back({4, 1});
  edges.push_back({5, 2});
  edges.push_back({5, 3});
  edges.push_back({6, 4});
  graph::Digraph g = MakeGraph(7, edges);
  std::vector<int> core = graph::CoreNumbers(g);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(core[i], 3) << i;
  EXPECT_EQ(core[4], 2);
  EXPECT_EQ(core[5], 2);
  EXPECT_EQ(core[6], 1);
}

// ---------------------------------------------------------------------------
// Hypergraph expansions
// ---------------------------------------------------------------------------

hypergraph::Hypergraph SmallHg() {
  return hypergraph::Hypergraph::FromEdges(4, {{0, 1, 2}, {2, 3}},
                                           {1.0f, 2.0f})
      .value();
}

TEST(CliqueExpansionTest, CoMembershipWeights) {
  tensor::CsrMatrix clique = hypergraph::CliqueExpansion(SmallHg());
  EXPECT_EQ(clique.At(0, 1), 1.0f);
  EXPECT_EQ(clique.At(1, 2), 1.0f);
  EXPECT_EQ(clique.At(2, 3), 2.0f);  // weight-2 hyperedge
  EXPECT_EQ(clique.At(0, 3), 0.0f);
  EXPECT_TRUE(clique.AllClose(clique.Transposed()));
}

TEST(CliqueExpansionTest, LosesHigherOrderStructure) {
  // The motivating example: a 3-edge and three 2-edges covering the same
  // pairs produce the SAME clique expansion — the hypergraph distinction
  // the paper exploits is destroyed by the reduction.
  auto triple = hypergraph::Hypergraph::FromEdges(3, {{0, 1, 2}}).value();
  auto pairs =
      hypergraph::Hypergraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}).value();
  EXPECT_TRUE(hypergraph::CliqueExpansion(triple).AllClose(
      hypergraph::CliqueExpansion(pairs)));
  EXPECT_NE(triple.num_edges(), pairs.num_edges());
}

TEST(StarExpansionTest, BipartiteStructure) {
  auto star = hypergraph::StarExpansion(SmallHg());
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->num_nodes(), 6u);  // 4 vertices + 2 hyperedge nodes
  EXPECT_EQ(star->num_edges(), 10u);  // 5 incidences x 2 directions
  EXPECT_TRUE(star->HasEdge(0, 4));
  EXPECT_TRUE(star->HasEdge(4, 0));
  EXPECT_FALSE(star->HasEdge(0, 1));  // vertices never directly linked
  EXPECT_FALSE(star->HasEdge(4, 5));  // hyperedge nodes never linked
}

TEST(HypergraphStatsTest, CountsEverything) {
  auto hg = hypergraph::Hypergraph::FromEdges(5, {{0, 1, 2}, {2, 3}}).value();
  hypergraph::HypergraphStats stats = hypergraph::ComputeHypergraphStats(hg);
  EXPECT_EQ(stats.num_vertices, 5u);
  EXPECT_EQ(stats.num_edges, 2u);
  EXPECT_EQ(stats.num_incidences, 5u);
  EXPECT_EQ(stats.isolated_vertices, 1u);  // vertex 4
  EXPECT_DOUBLE_EQ(stats.mean_edge_size, 2.5);
  EXPECT_EQ(stats.max_edge_size, 3u);
  EXPECT_EQ(stats.max_vertex_degree, 2u);  // vertex 2
  std::string text = hypergraph::StatsToString(stats);
  EXPECT_NE(text.find("n=5"), std::string::npos);
  EXPECT_NE(text.find("isolated=1"), std::string::npos);
}

}  // namespace
}  // namespace ahntp
