#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/pagerank.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace ahntp {
namespace {

/// Restores the default thread configuration when a test exits, so a
/// failing assertion cannot leak an override into later tests.
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { SetNumThreads(threads); }
  ~ThreadGuard() { SetNumThreads(0); }
};

// ---------------------------------------------------------------------------
// Pool lifecycle & dispatch
// ---------------------------------------------------------------------------

TEST(ParallelTest, NumThreadsIsPositive) {
  EXPECT_GE(NumThreads(), 1);
}

TEST(ParallelTest, SetNumThreadsRoundTrips) {
  ThreadGuard guard(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
}

TEST(ParallelTest, PoolSurvivesReconfiguration) {
  ThreadGuard guard(2);
  std::atomic<int> count{0};
  ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  SetNumThreads(4);  // joins the old pool, next dispatch builds a new one
  ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 200);
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(), 7, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, WorkerNestingRunsInline) {
  ThreadGuard guard(4);
  EXPECT_FALSE(InParallelWorker());
  std::atomic<int> nested_total{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t) {
    // A nested region must execute (serially) rather than deadlock.
    ParallelFor(0, 10, 1, [&](size_t b, size_t e) {
      nested_total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(nested_total.load(), 80);
}

// ---------------------------------------------------------------------------
// Grain-size edge cases
// ---------------------------------------------------------------------------

TEST(ParallelTest, EmptyRangeNeverInvokes) {
  ThreadGuard guard(4);
  bool invoked = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { invoked = true; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { invoked = true; });
  EXPECT_FALSE(invoked);
  double total = ParallelReduce<double>(
      9, 9, 4, 1.5, [](size_t, size_t) { return 100.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(total, 1.5);  // identity untouched
}

TEST(ParallelTest, SingleElementRangeRunsOnCaller) {
  ThreadGuard guard(4);
  int calls = 0;
  ParallelFor(41, 42, 1, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 41u);
    EXPECT_EQ(e, 42u);
    EXPECT_FALSE(InParallelWorker());  // small ranges stay on the caller
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, ZeroGrainIsTreatedAsOne) {
  ThreadGuard guard(2);
  std::atomic<int> count{0};
  ParallelFor(0, 5, 0, [&](size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(ParallelTest, GrainLargerThanRangeRunsSerially) {
  ThreadGuard guard(8);
  int calls = 0;
  ParallelFor(0, 100, 1000, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, ChunkBoundariesFollowGrain) {
  ThreadGuard guard(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(10, 35, 10, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back({b, e});
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{10, 20}));
  EXPECT_EQ(chunks[1], (std::pair<size_t, size_t>{20, 30}));
  EXPECT_EQ(chunks[2], (std::pair<size_t, size_t>{30, 35}));
}

// ---------------------------------------------------------------------------
// Exception propagation
// ---------------------------------------------------------------------------

TEST(ParallelTest, WorkerExceptionReachesCaller) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [](size_t b, size_t) {
                    if (b == 42) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelTest, FirstExceptionWinsAndPoolStaysUsable) {
  ThreadGuard guard(4);
  try {
    ParallelFor(0, 64, 1, [](size_t b, size_t) {
      if (b % 2 == 0) throw std::runtime_error("even chunk");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "even chunk");
  }
  // The failed batch must not wedge the pool.
  std::atomic<int> count{0};
  ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 100);
}

// ---------------------------------------------------------------------------
// ParallelReduce determinism
// ---------------------------------------------------------------------------

TEST(ParallelTest, ReduceMatchesSerialSum) {
  ThreadGuard guard(4);
  std::vector<double> values(10000);
  Rng rng(5);
  for (auto& v : values) v = rng.NextDouble() - 0.5;
  auto map = [&](size_t b, size_t e) {
    double acc = 0.0;
    for (size_t i = b; i < e; ++i) acc += values[i];
    return acc;
  };
  auto combine = [](double a, double b) { return a + b; };
  double with_pool =
      ParallelReduce<double>(0, values.size(), 128, 0.0, map, combine);
  SetNumThreads(1);
  double serial =
      ParallelReduce<double>(0, values.size(), 128, 0.0, map, combine);
  // Same grain => same chunk boundaries => bit-identical.
  EXPECT_EQ(std::memcmp(&with_pool, &serial, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// Kernel determinism across thread counts (the EXPERIMENTS.md seed
// contract): MatMul, SpMM, SpGEMM, and PageRank must be bit-identical at
// 1, 2, and 8 threads.
// ---------------------------------------------------------------------------

template <typename Fn>
auto RunAtThreads(int threads, const Fn& fn) {
  ThreadGuard guard(threads);
  return fn();
}

void ExpectBitIdentical(const tensor::Matrix& a, const tensor::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(ParallelDeterminismTest, MatMulBitIdenticalAcrossThreadCounts) {
  Rng rng(123);
  tensor::Matrix a = tensor::Matrix::Randn(150, 90, &rng);
  tensor::Matrix b = tensor::Matrix::Randn(90, 110, &rng);
  auto run = [&] { return tensor::MatMul(a, b); };
  tensor::Matrix r1 = RunAtThreads(1, run);
  tensor::Matrix r2 = RunAtThreads(2, run);
  tensor::Matrix r8 = RunAtThreads(8, run);
  ExpectBitIdentical(r1, r2);
  ExpectBitIdentical(r1, r8);

  auto run_tn = [&] { return tensor::MatMul(b, a, true, true); };
  ExpectBitIdentical(RunAtThreads(1, run_tn), RunAtThreads(8, run_tn));
}

TEST(ParallelDeterminismTest, SpMMBitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  std::vector<tensor::Triplet> triplets;
  for (int i = 0; i < 4000; ++i) {
    triplets.push_back({static_cast<int>(rng.NextBounded(300)),
                        static_cast<int>(rng.NextBounded(300)),
                        rng.Uniform(-1.0f, 1.0f)});
  }
  tensor::CsrMatrix a =
      tensor::CsrMatrix::FromTriplets(300, 300, std::move(triplets));
  tensor::Matrix x = tensor::Matrix::Randn(300, 48, &rng);
  auto run = [&] { return tensor::SpMM(a, x); };
  tensor::Matrix r1 = RunAtThreads(1, run);
  ExpectBitIdentical(r1, RunAtThreads(2, run));
  ExpectBitIdentical(r1, RunAtThreads(8, run));

  auto run_t = [&] { return tensor::SpMMTransposed(a, x); };
  tensor::Matrix t1 = RunAtThreads(1, run_t);
  ExpectBitIdentical(t1, RunAtThreads(2, run_t));
  ExpectBitIdentical(t1, RunAtThreads(8, run_t));
}

TEST(ParallelDeterminismTest, SpGemmBitIdenticalAcrossThreadCounts) {
  auto random_sparse = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<tensor::Triplet> triplets;
    for (int i = 0; i < 3000; ++i) {
      triplets.push_back({static_cast<int>(rng.NextBounded(250)),
                          static_cast<int>(rng.NextBounded(250)),
                          rng.Uniform(-1.0f, 1.0f)});
    }
    return tensor::CsrMatrix::FromTriplets(250, 250, std::move(triplets));
  };
  tensor::CsrMatrix a = random_sparse(21);
  tensor::CsrMatrix b = random_sparse(22);
  auto run = [&] { return tensor::SpGemm(a, b); };
  tensor::CsrMatrix r1 = RunAtThreads(1, run);
  tensor::CsrMatrix r2 = RunAtThreads(2, run);
  tensor::CsrMatrix r8 = RunAtThreads(8, run);
  EXPECT_EQ(r1.row_ptr(), r2.row_ptr());
  EXPECT_EQ(r1.col_idx(), r2.col_idx());
  EXPECT_EQ(r1.row_ptr(), r8.row_ptr());
  EXPECT_EQ(r1.col_idx(), r8.col_idx());
  ASSERT_EQ(r1.nnz(), r2.nnz());
  ASSERT_EQ(r1.nnz(), r8.nnz());
  EXPECT_EQ(std::memcmp(r1.values().data(), r2.values().data(),
                        r1.nnz() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(r1.values().data(), r8.values().data(),
                        r1.nnz() * sizeof(float)),
            0);
}

TEST(ParallelDeterminismTest, PageRankBitIdenticalAcrossThreadCounts) {
  Rng rng(31);
  std::vector<tensor::Triplet> triplets;
  for (int i = 0; i < 5000; ++i) {
    triplets.push_back({static_cast<int>(rng.NextBounded(400)),
                        static_cast<int>(rng.NextBounded(400)), 1.0f});
  }
  tensor::CsrMatrix adjacency =
      tensor::CsrMatrix::FromTriplets(400, 400, std::move(triplets));
  auto run = [&] { return graph::PageRank(adjacency); };
  std::vector<double> r1 = RunAtThreads(1, run);
  std::vector<double> r2 = RunAtThreads(2, run);
  std::vector<double> r8 = RunAtThreads(8, run);
  ASSERT_EQ(r1.size(), r2.size());
  ASSERT_EQ(r1.size(), r8.size());
  EXPECT_EQ(std::memcmp(r1.data(), r2.data(), r1.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(r1.data(), r8.data(), r1.size() * sizeof(double)), 0);
}

}  // namespace
}  // namespace ahntp
