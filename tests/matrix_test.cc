#include "tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ahntp::tensor {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), 0.0f);
  }
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.At(2, 1), 6.0f);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  EXPECT_EQ(i.At(0, 0), 1.0f);
  EXPECT_EQ(i.At(0, 1), 0.0f);
  EXPECT_EQ(i.Sum(), 3.0f);
}

TEST(MatrixTest, RandnStatistics) {
  Rng rng(1);
  Matrix m = Matrix::Randn(100, 100, &rng, 2.0f, 0.5f);
  EXPECT_NEAR(m.Mean(), 2.0f, 0.02f);
}

TEST(MatrixTest, RandUniformRange) {
  Rng rng(2);
  Matrix m = Matrix::RandUniform(50, 50, &rng, -1.0f, 1.0f);
  EXPECT_LE(m.MaxAbs(), 1.0f);
  EXPECT_NEAR(m.Mean(), 0.0f, 0.05f);
}

TEST(MatrixTest, InPlaceArithmetic) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_EQ(a.At(1, 1), 44.0f);
  a -= b;
  EXPECT_EQ(a.At(1, 1), 4.0f);
  a *= 2.0f;
  EXPECT_EQ(a.At(0, 0), 2.0f);
}

TEST(MatrixTest, Reductions) {
  Matrix m = Matrix::FromRows({{1, -2}, {3, -4}});
  EXPECT_EQ(m.Sum(), -2.0f);
  EXPECT_EQ(m.Mean(), -0.5f);
  EXPECT_EQ(m.MaxAbs(), 4.0f);
  EXPECT_NEAR(m.FrobeniusNorm(), std::sqrt(30.0f), 1e-5f);
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.At(2, 1), 6.0f);
  EXPECT_TRUE(t.Transposed().AllClose(m));
}

TEST(MatrixTest, Reshape) {
  Matrix m = Matrix::FromRows({{1, 2, 3, 4}});
  m.Reshape(2, 2);
  EXPECT_EQ(m.At(1, 0), 3.0f);
}

TEST(MatrixTest, AllCloseRespectsTolerance) {
  Matrix a = Matrix::FromRows({{1.0f}});
  Matrix b = Matrix::FromRows({{1.0005f}});
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-5f));
  EXPECT_FALSE(a.AllClose(Matrix(2, 1)));
}

TEST(MatMulTest, BasicProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(c.AllClose(Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(3);
  Matrix a = Matrix::Randn(4, 4, &rng);
  EXPECT_TRUE(MatMul(a, Matrix::Identity(4)).AllClose(a));
  EXPECT_TRUE(MatMul(Matrix::Identity(4), a).AllClose(a));
}

TEST(MatMulTest, TransposeVariantsAgree) {
  Rng rng(4);
  Matrix a = Matrix::Randn(3, 5, &rng);
  Matrix b = Matrix::Randn(5, 2, &rng);
  Matrix expected = MatMul(a, b);
  EXPECT_TRUE(MatMul(a.Transposed(), b, true, false).AllClose(expected, 1e-4f));
  EXPECT_TRUE(MatMul(a, b.Transposed(), false, true).AllClose(expected, 1e-4f));
  EXPECT_TRUE(MatMul(a.Transposed(), b.Transposed(), true, true)
                  .AllClose(expected, 1e-4f));
}

TEST(MatMulTest, RectangularShapes) {
  Rng rng(5);
  Matrix a = Matrix::Randn(2, 7, &rng);
  Matrix b = Matrix::Randn(7, 3, &rng);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 3u);
  // Verify one entry by hand.
  double expected = 0.0;
  for (size_t k = 0; k < 7; ++k) expected += a.At(1, k) * b.At(k, 2);
  EXPECT_NEAR(c.At(1, 2), expected, 1e-4);
}

TEST(ElementwiseTest, AddSubHadamardScale) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}});
  EXPECT_TRUE(Add(a, b).AllClose(Matrix::FromRows({{4, 6}})));
  EXPECT_TRUE(Sub(a, b).AllClose(Matrix::FromRows({{-2, -2}})));
  EXPECT_TRUE(Hadamard(a, b).AllClose(Matrix::FromRows({{3, 8}})));
  EXPECT_TRUE(Scale(a, -2.0f).AllClose(Matrix::FromRows({{-2, -4}})));
}

TEST(BroadcastTest, AddRowBroadcast) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix row = Matrix::FromRows({{10, 20}});
  EXPECT_TRUE(
      AddRowBroadcast(a, row).AllClose(Matrix::FromRows({{11, 22}, {13, 24}})));
}

TEST(ReductionTest, RowAndColSums) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(RowSums(a).AllClose(Matrix::FromRows({{3}, {7}})));
  EXPECT_TRUE(ColSums(a).AllClose(Matrix::FromRows({{4, 6}})));
}

TEST(ReductionTest, RowNorms) {
  Matrix a = Matrix::FromRows({{3, 4}, {0, 0}});
  Matrix norms = RowNorms(a);
  EXPECT_NEAR(norms.At(0, 0), 5.0f, 1e-5f);
  EXPECT_NEAR(norms.At(1, 0), 0.0f, 1e-5f);
}

TEST(ConcatTest, Cols) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = ConcatCols({&a, &b});
  EXPECT_TRUE(c.AllClose(Matrix::FromRows({{1, 3, 4}, {2, 5, 6}})));
}

TEST(ConcatTest, Rows) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = ConcatRows({&a, &b});
  EXPECT_TRUE(c.AllClose(Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}})));
}

TEST(GatherTest, GatherRowsWithRepeats) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_TRUE(g.AllClose(Matrix::FromRows({{5, 6}, {1, 2}, {5, 6}})));
}

TEST(MatrixDeathTest, ShapeMismatchChecks) {
  Matrix a(2, 2), b(3, 2);
  EXPECT_DEATH(Add(a, b), "check failed");
  EXPECT_DEATH(MatMul(a, b), "check failed");
}

}  // namespace
}  // namespace ahntp::tensor
