// Tests for the robustness subsystem (DESIGN.md §16): seed-ensemble +
// MC-dropout uncertainty (models/uncertainty.h) and the abstain-aware
// serving policy (ServeOptions::min_confidence). The two contracts under
// test everywhere: confidence is bit-identical at any thread count and
// across sharded vs monolithic inference plans, and abstain decisions are
// a pure function of the batch contents.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"
#include "models/uncertainty.h"
#include "serve/backend.h"
#include "serve/score_cache.h"
#include "serve/server.h"

namespace ahntp {
namespace {

using models::EnsembleOptions;
using models::SeedEnsemble;
using serve::ServeOptions;
using serve::TrustQuery;
using serve::TrustResponse;
using serve::TrustServer;

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { SetNumThreads(threads); }
  ~ThreadGuard() { SetNumThreads(0); }
};

/// Generated dataset + seeded predictor builder shared by every test here
/// (the tests/serve_test.cc ServingFixture pattern).
struct RobustnessFixture {
  data::SocialDataset dataset;
  data::TrustSplit split;
  graph::Digraph graph;
  tensor::Matrix features;

  static RobustnessFixture Make() {
    data::GeneratorConfig config;
    config.num_users = 60;
    config.num_items = 30;
    config.num_communities = 3;
    config.seed = 11;
    RobustnessFixture f;
    f.dataset = data::SocialNetworkGenerator(config).Generate();
    f.split = data::MakeSplit(f.dataset);
    auto graph = f.dataset.GraphFromEdges(f.split.train_positive);
    EXPECT_TRUE(graph.ok());
    f.graph = std::move(graph).value();
    f.features = data::BuildFeatureMatrix(f.dataset);
    return f;
  }

  std::shared_ptr<models::TrustPredictor> MakeMember(uint64_t seed) const {
    models::ModelInputs inputs;
    inputs.features = &features;
    inputs.graph = &graph;
    inputs.dataset = &dataset;
    inputs.hidden_dims = {8, 4};
    Rng rng(seed);
    inputs.rng = &rng;
    auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).value();
  }

  /// Members from consecutive init seeds; member 0 is the canonical model.
  std::shared_ptr<SeedEnsemble> MakeEnsemble(
      size_t members, EnsembleOptions options = {}) const {
    std::vector<std::shared_ptr<models::TrustPredictor>> built;
    for (size_t m = 0; m < members; ++m) {
      built.push_back(MakeMember(5 + m));
    }
    return std::make_shared<SeedEnsemble>(std::move(built), options);
  }

  std::vector<data::TrustPair> Queries(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(split.test_pairs[i % split.test_pairs.size()]);
    }
    return pairs;
  }
};

// ---------------------------------------------------------------------------
// SeedEnsemble
// ---------------------------------------------------------------------------

TEST(SeedEnsembleTest, CanonicalScoresMatchMemberZeroBitwise) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  auto solo = fixture.MakeMember(5);
  auto ensemble = fixture.MakeEnsemble(3);
  std::vector<data::TrustPair> pairs = fixture.Queries(24);
  std::vector<float> direct = solo->PredictProbabilities(pairs);
  SeedEnsemble::Scored scored = ensemble->Score(pairs);
  ASSERT_EQ(scored.scores.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(scored.scores[i], direct[i]) << "pair " << i;
  }
}

TEST(SeedEnsembleTest, SingletonWithoutDropoutIsFullyConfident) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  auto ensemble = fixture.MakeEnsemble(1);
  EXPECT_EQ(ensemble->num_votes(), 1u);
  SeedEnsemble::Scored scored = ensemble->Score(fixture.Queries(12));
  for (float c : scored.confidence) {
    EXPECT_EQ(c, 1.0f);
  }
}

TEST(SeedEnsembleTest, SeedDisagreementLowersConfidence) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  auto ensemble = fixture.MakeEnsemble(3);
  SeedEnsemble::Scored scored = ensemble->Score(fixture.Queries(24));
  float min_conf = 1.0f;
  for (float c : scored.confidence) {
    EXPECT_GT(c, 0.0f);
    EXPECT_LE(c, 1.0f);
    min_conf = std::min(min_conf, c);
  }
  // Untrained models from different init seeds must actually disagree.
  EXPECT_LT(min_conf, 1.0f);
}

TEST(SeedEnsembleTest, McDropoutIsDeterministicAndLowersConfidence) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  EnsembleOptions options;
  options.mc_dropout_samples = 3;
  options.mc_dropout_rate = 0.2f;
  auto ensemble = fixture.MakeEnsemble(1, options);
  EXPECT_EQ(ensemble->num_votes(), 4u);
  std::vector<data::TrustPair> pairs = fixture.Queries(24);
  SeedEnsemble::Scored a = ensemble->Score(pairs);
  SeedEnsemble::Scored b = ensemble->Score(pairs);
  ASSERT_EQ(a.confidence.size(), b.confidence.size());
  float min_conf = 1.0f;
  for (size_t i = 0; i < a.confidence.size(); ++i) {
    // The dropout masks are keyed on (seed, user, column), not on any
    // per-call state, so repeated scoring is bit-identical.
    EXPECT_EQ(a.confidence[i], b.confidence[i]) << "pair " << i;
    EXPECT_EQ(a.scores[i], b.scores[i]) << "pair " << i;
    min_conf = std::min(min_conf, a.confidence[i]);
  }
  EXPECT_LT(min_conf, 1.0f);
}

TEST(SeedEnsembleTest, SmallerTauPunishesDisagreementHarder) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  EnsembleOptions tight;
  tight.tau = 0.01;
  EnsembleOptions loose;
  loose.tau = 1.0;
  auto tight_ens = fixture.MakeEnsemble(3, tight);
  auto loose_ens = fixture.MakeEnsemble(3, loose);
  std::vector<data::TrustPair> pairs = fixture.Queries(16);
  SeedEnsemble::Scored a = tight_ens->Score(pairs);
  SeedEnsemble::Scored b = loose_ens->Score(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LE(a.confidence[i], b.confidence[i]) << "pair " << i;
  }
}

TEST(SeedEnsembleTest, ConfidenceIsThreadCountInvariant) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  std::vector<data::TrustPair> pairs = fixture.Queries(32);
  EnsembleOptions options;
  options.mc_dropout_samples = 2;
  options.mc_dropout_rate = 0.15f;

  auto run = [&](int threads) {
    ThreadGuard guard(threads);
    return fixture.MakeEnsemble(3, options)->Score(pairs);
  };
  SeedEnsemble::Scored t1 = run(1);
  for (int threads : {2, 8}) {
    SeedEnsemble::Scored tn = run(threads);
    ASSERT_EQ(tn.scores.size(), t1.scores.size());
    for (size_t i = 0; i < t1.scores.size(); ++i) {
      EXPECT_EQ(tn.scores[i], t1.scores[i])
          << "score " << i << " at threads=" << threads;
      EXPECT_EQ(tn.confidence[i], t1.confidence[i])
          << "confidence " << i << " at threads=" << threads;
    }
  }
}

TEST(SeedEnsembleTest, ShardedPlanMatchesMonolithicBitwise) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  EnsembleOptions options;
  options.mc_dropout_samples = 2;
  options.mc_dropout_rate = 0.15f;
  auto mono = fixture.MakeEnsemble(2, options);

  // Same seeds, but the canonical member scores through a 3-shard plan
  // with constrained residency (real spill + refault traffic).
  std::vector<std::shared_ptr<models::TrustPredictor>> members;
  members.push_back(fixture.MakeMember(5));
  members.push_back(fixture.MakeMember(6));
  const std::string spill_dir =
      ::testing::TempDir() + "/robustness_shard_spill";
  models::ShardedPlanOptions sharded;
  sharded.num_shards = 3;
  sharded.max_resident_shards = 1;
  sharded.spill_dir = spill_dir;
  members[0]->EnableShardedInference(sharded);
  members[0]->WarmInferencePlan();
  SeedEnsemble sharded_ens(members, options);

  std::vector<data::TrustPair> pairs = fixture.Queries(24);
  SeedEnsemble::Scored expected = mono->Score(pairs);
  SeedEnsemble::Scored actual = sharded_ens.Score(pairs);
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(actual.scores[i], expected.scores[i]) << "score " << i;
    EXPECT_EQ(actual.confidence[i], expected.confidence[i])
        << "confidence " << i;
  }
  members[0]->DisableShardedInference();
  std::filesystem::remove_all(spill_dir);
}

// ---------------------------------------------------------------------------
// Abstain-aware serving
// ---------------------------------------------------------------------------

struct AbstainRun {
  serve::ServerStats stats;
  std::vector<TrustResponse> responses;
};

/// One closed-loop wave against an EnsembleBackend: everything enqueued
/// before Start(), so batch composition — and the abstain partition — is
/// pinned regardless of thread count.
AbstainRun RunAbstainWave(const RobustnessFixture& fixture,
                          serve::EnsembleBackend* primary,
                          serve::ScoreBackend* fallback,
                          float min_confidence, size_t requests,
                          serve::ScoreCache* cache = nullptr) {
  ServeOptions options;
  options.queue_capacity = requests + 8;
  options.max_batch_size = 8;
  options.min_confidence = min_confidence;
  options.sleep_on_backoff = false;
  options.shared_score_cache = cache;
  TrustServer server(options, primary, fallback);
  std::vector<std::future<TrustResponse>> futures;
  std::vector<data::TrustPair> pairs = fixture.Queries(requests);
  for (const data::TrustPair& p : pairs) {
    TrustQuery q;
    q.src = p.src;
    q.dst = p.dst;
    futures.push_back(server.Submit(q));
  }
  server.Start();
  AbstainRun run;
  for (auto& f : futures) run.responses.push_back(f.get());
  server.Shutdown();
  run.stats = server.Stats();
  return run;
}

/// The median ensemble confidence over the query stream: a threshold that
/// forces both abstain and serve outcomes in the same wave.
float MedianConfidence(const RobustnessFixture& fixture,
                       const std::shared_ptr<SeedEnsemble>& ensemble,
                       size_t requests) {
  SeedEnsemble::Scored probe = ensemble->Score(fixture.Queries(requests));
  std::vector<float> sorted = probe.confidence;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

TEST(AbstainServingTest, LowConfidenceRoutesToFallbackWithAbstainedFlag) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  EnsembleOptions options;
  options.mc_dropout_samples = 2;
  options.mc_dropout_rate = 0.15f;
  auto ensemble = fixture.MakeEnsemble(3, options);
  serve::EnsembleBackend primary(ensemble);
  serve::HeuristicBackend fallback(&fixture.graph,
                                   models::Heuristic::kJaccard);
  const float threshold = MedianConfidence(fixture, ensemble, 40);

  AbstainRun run =
      RunAbstainWave(fixture, &primary, &fallback, threshold, 40);
  EXPECT_GT(run.stats.abstained, 0);
  EXPECT_GT(run.stats.ok, 0);
  int64_t abstained_seen = 0;
  for (const TrustResponse& r : run.responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    if (r.abstained) {
      ++abstained_seen;
      EXPECT_TRUE(r.degraded)
          << "abstained responses must be served by the fallback";
      EXPECT_TRUE(std::isfinite(r.score));
      EXPECT_LT(r.confidence, threshold)
          << "abstained responses report the rejected primary confidence";
    } else {
      EXPECT_GE(r.confidence, threshold);
    }
  }
  EXPECT_EQ(abstained_seen, run.stats.abstained);
  // Abstentions land in the degraded partition; the stats identity holds.
  EXPECT_EQ(run.stats.submitted - run.stats.rejected,
            run.stats.expired + run.stats.ok + run.stats.degraded +
                run.stats.failed);
}

TEST(AbstainServingTest, NoFallbackAbstainFailsWithFailedPrecondition) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  auto ensemble = fixture.MakeEnsemble(3);
  serve::EnsembleBackend primary(ensemble);
  const float threshold = MedianConfidence(fixture, ensemble, 40);

  AbstainRun run = RunAbstainWave(fixture, &primary, nullptr, threshold, 40);
  EXPECT_GT(run.stats.abstained, 0);
  EXPECT_EQ(run.stats.abstained, run.stats.failed);
  for (const TrustResponse& r : run.responses) {
    if (!r.abstained) continue;
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_FALSE(r.degraded);
    EXPECT_LT(r.confidence, threshold);
  }
}

TEST(AbstainServingTest, ZeroThresholdNeverAbstains) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  auto ensemble = fixture.MakeEnsemble(3);
  serve::EnsembleBackend primary(ensemble);
  serve::HeuristicBackend fallback(&fixture.graph,
                                   models::Heuristic::kJaccard);
  AbstainRun run = RunAbstainWave(fixture, &primary, &fallback, 0.0f, 24);
  EXPECT_EQ(run.stats.abstained, 0);
  EXPECT_EQ(run.stats.ok, 24);
  for (const TrustResponse& r : run.responses) {
    EXPECT_FALSE(r.abstained);
    // The uncertainty signal still flows even when nothing abstains.
    EXPECT_GT(r.confidence, 0.0f);
    EXPECT_LE(r.confidence, 1.0f);
  }
}

TEST(AbstainServingTest, AbstainedScoresAreNeverCached) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  EnsembleOptions options;
  options.mc_dropout_samples = 2;
  options.mc_dropout_rate = 0.15f;
  auto ensemble = fixture.MakeEnsemble(3, options);
  serve::EnsembleBackend primary(ensemble);
  serve::HeuristicBackend fallback(&fixture.graph,
                                   models::Heuristic::kJaccard);
  const size_t requests = 40;
  const float threshold = MedianConfidence(fixture, ensemble, requests);

  serve::ScoreCache cache(256);
  AbstainRun wave1 = RunAbstainWave(fixture, &primary, &fallback, threshold,
                                    requests, &cache);
  AbstainRun wave2 = RunAbstainWave(fixture, &primary, &fallback, threshold,
                                    requests, &cache);
  EXPECT_GT(wave1.stats.abstained, 0);
  // Confident scores were cached by wave 1 and absorbed in wave 2; the
  // abstained keys were not, so wave 2 recomputes and abstains identically.
  EXPECT_GT(wave2.stats.cache_hits, 0);
  EXPECT_EQ(wave2.stats.abstained, wave1.stats.abstained);
  for (const TrustResponse& r : wave2.responses) {
    if (r.cached) {
      EXPECT_FALSE(r.abstained);
      EXPECT_GE(r.confidence, threshold);
    }
  }
}

TEST(AbstainServingTest, AbstainDecisionsAreThreadCountInvariant) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  EnsembleOptions ens_options;
  ens_options.mc_dropout_samples = 2;
  ens_options.mc_dropout_rate = 0.15f;

  auto run = [&](int threads) {
    ThreadGuard guard(threads);
    auto ensemble = fixture.MakeEnsemble(3, ens_options);
    serve::EnsembleBackend primary(ensemble);
    serve::HeuristicBackend fallback(&fixture.graph,
                                     models::Heuristic::kJaccard);
    const float threshold = MedianConfidence(fixture, ensemble, 40);
    return RunAbstainWave(fixture, &primary, &fallback, threshold, 40);
  };

  AbstainRun t1 = run(1);
  EXPECT_GT(t1.stats.abstained, 0);
  for (int threads : {2, 8}) {
    AbstainRun tn = run(threads);
    EXPECT_EQ(tn.stats.abstained, t1.stats.abstained);
    EXPECT_EQ(tn.stats.ok, t1.stats.ok);
    EXPECT_EQ(tn.stats.degraded, t1.stats.degraded);
    ASSERT_EQ(tn.responses.size(), t1.responses.size());
    for (size_t i = 0; i < t1.responses.size(); ++i) {
      EXPECT_EQ(tn.responses[i].abstained, t1.responses[i].abstained)
          << "response " << i << " at threads=" << threads;
      EXPECT_EQ(tn.responses[i].score, t1.responses[i].score)
          << "response " << i << " at threads=" << threads;
      EXPECT_EQ(tn.responses[i].confidence, t1.responses[i].confidence)
          << "response " << i << " at threads=" << threads;
    }
  }
}

TEST(AbstainServingTest, PlainBackendReportsFullConfidenceAndNeverAbstains) {
  RobustnessFixture fixture = RobustnessFixture::Make();
  // HeuristicBackend has no uncertainty signal: the default
  // ScoreBatchWithConfidence wrapper reports 1.0, so even an aggressive
  // threshold abstains nothing.
  serve::HeuristicBackend primary(&fixture.graph,
                                  models::Heuristic::kJaccard);
  ServeOptions options;
  options.queue_capacity = 32;
  options.min_confidence = 0.99f;
  TrustServer server(options, &primary, nullptr);
  std::vector<std::future<TrustResponse>> futures;
  for (const data::TrustPair& p : fixture.Queries(16)) {
    TrustQuery q;
    q.src = p.src;
    q.dst = p.dst;
    futures.push_back(server.Submit(q));
  }
  server.Start();
  for (auto& f : futures) {
    TrustResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.abstained);
    EXPECT_EQ(r.confidence, 1.0f);
  }
  server.Shutdown();
  EXPECT_EQ(server.Stats().abstained, 0);
}

}  // namespace
}  // namespace ahntp
