#include "tensor/csr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ahntp::tensor {
namespace {

/// Random sparse matrix with the given density for property tests.
CsrMatrix RandomSparse(size_t rows, size_t cols, double density, Rng* rng) {
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) {
        triplets.push_back({static_cast<int>(r), static_cast<int>(c),
                            rng->Uniform(-2.0f, 2.0f)});
      }
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m(3, 4);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.At(1, 2), 0.0f);
  EXPECT_TRUE(m.ToDense().AllClose(Matrix(3, 4)));
}

TEST(CsrTest, FromTripletsSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 1, 1.0f}, {0, 1, 2.5f}, {1, 0, -1.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.At(0, 1), 3.5f);
  EXPECT_EQ(m.At(1, 0), -1.0f);
  EXPECT_EQ(m.At(0, 0), 0.0f);
}

TEST(CsrTest, FromDenseRoundTrip) {
  Matrix dense = Matrix::FromRows({{0, 1, 0}, {2, 0, 3}});
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  EXPECT_EQ(sparse.nnz(), 3u);
  EXPECT_TRUE(sparse.ToDense().AllClose(dense));
}

TEST(CsrTest, Identity) {
  CsrMatrix i = CsrMatrix::Identity(4);
  EXPECT_EQ(i.nnz(), 4u);
  EXPECT_TRUE(i.ToDense().AllClose(Matrix::Identity(4)));
}

TEST(CsrTest, TransposedMatchesDense) {
  Rng rng(1);
  CsrMatrix m = RandomSparse(5, 8, 0.3, &rng);
  EXPECT_TRUE(m.Transposed().ToDense().AllClose(m.ToDense().Transposed()));
}

TEST(CsrTest, ScaledAndPruned) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0f}, {1, 1, 1e-8f}});
  EXPECT_EQ(m.Scaled(3.0f).At(0, 0), 6.0f);
  EXPECT_EQ(m.Pruned(1e-6f).nnz(), 1u);
}

TEST(CsrTest, Binarized) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 5.0f}, {1, 0, -3.0f}});
  CsrMatrix b = m.Binarized();
  EXPECT_EQ(b.At(0, 0), 1.0f);
  EXPECT_EQ(b.At(1, 0), 1.0f);
}

TEST(CsrTest, RowAndColSums) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 2, 4.0f}});
  EXPECT_EQ(m.RowSums(), (std::vector<float>{3.0f, 4.0f}));
  EXPECT_EQ(m.ColSums(), (std::vector<float>{1.0f, 0.0f, 6.0f}));
}

TEST(CsrTest, RowNormalizedIsStochastic) {
  Rng rng(2);
  CsrMatrix m = RandomSparse(6, 6, 0.4, &rng);
  // Force positive values so row sums cannot cancel to zero.
  for (auto& v : m.mutable_values()) v = std::fabs(v) + 0.1f;
  CsrMatrix n = m.RowNormalized();
  for (float s : n.RowSums()) {
    if (s != 0.0f) {
      EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
  }
}

TEST(CsrTest, AtOnMissingEntryIsZero) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {{1, 1, 7.0f}});
  EXPECT_EQ(m.At(1, 1), 7.0f);
  EXPECT_EQ(m.At(0, 0), 0.0f);
  EXPECT_EQ(m.At(2, 2), 0.0f);
}

TEST(SpMVTest, MatchesDense) {
  Rng rng(3);
  CsrMatrix m = RandomSparse(7, 5, 0.4, &rng);
  std::vector<float> x(5);
  for (auto& v : x) v = rng.Uniform(-1.0f, 1.0f);
  std::vector<float> y = SpMV(m, x);
  Matrix dense = m.ToDense();
  for (size_t r = 0; r < 7; ++r) {
    double expected = 0.0;
    for (size_t c = 0; c < 5; ++c) expected += dense.At(r, c) * x[c];
    EXPECT_NEAR(y[r], expected, 1e-4);
  }
}

TEST(SpMMTest, MatchesDense) {
  Rng rng(4);
  CsrMatrix a = RandomSparse(6, 4, 0.5, &rng);
  Matrix b = Matrix::Randn(4, 3, &rng);
  EXPECT_TRUE(SpMM(a, b).AllClose(MatMul(a.ToDense(), b), 1e-4f));
}

TEST(SpMMTransposedTest, MatchesDense) {
  Rng rng(5);
  CsrMatrix a = RandomSparse(6, 4, 0.5, &rng);
  Matrix b = Matrix::Randn(6, 3, &rng);
  EXPECT_TRUE(SpMMTransposed(a, b).AllClose(
      MatMul(a.ToDense(), b, /*transpose_a=*/true), 1e-4f));
}

class SpGemmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpGemmPropertyTest, MatchesDenseProduct) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  CsrMatrix a = RandomSparse(8, 6, 0.35, &rng);
  CsrMatrix b = RandomSparse(6, 7, 0.35, &rng);
  CsrMatrix c = SpGemm(a, b);
  EXPECT_TRUE(c.ToDense().AllClose(MatMul(a.ToDense(), b.ToDense()), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpGemmPropertyTest,
                         ::testing::Range(1, 11));

class SparseMergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseMergePropertyTest, HadamardAddSubMatchDense) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  CsrMatrix a = RandomSparse(9, 9, 0.3, &rng);
  CsrMatrix b = RandomSparse(9, 9, 0.3, &rng);
  EXPECT_TRUE(SparseHadamard(a, b).ToDense().AllClose(
      Hadamard(a.ToDense(), b.ToDense()), 1e-5f));
  EXPECT_TRUE(SparseAdd(a, b).ToDense().AllClose(
      Add(a.ToDense(), b.ToDense()), 1e-5f));
  EXPECT_TRUE(SparseSub(a, b).ToDense().AllClose(
      Sub(a.ToDense(), b.ToDense()), 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseMergePropertyTest,
                         ::testing::Range(1, 11));

TEST(SparseMergeTest, HadamardPatternIsIntersection) {
  CsrMatrix a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0f}, {0, 1, 3.0f}});
  CsrMatrix b = CsrMatrix::FromTriplets(2, 2, {{0, 1, 4.0f}, {1, 1, 5.0f}});
  CsrMatrix h = SparseHadamard(a, b);
  EXPECT_EQ(h.nnz(), 1u);
  EXPECT_EQ(h.At(0, 1), 12.0f);
}

TEST(CsrDeathTest, OutOfRangeTriplet) {
  EXPECT_DEATH(CsrMatrix::FromTriplets(2, 2, {{5, 0, 1.0f}}), "check failed");
}

TEST(CsrDeathTest, SpMMShapeMismatch) {
  CsrMatrix a(2, 3);
  Matrix b(4, 2);
  EXPECT_DEATH(SpMM(a, b), "check failed");
}

}  // namespace
}  // namespace ahntp::tensor
