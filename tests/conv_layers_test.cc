#include "models/conv_layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ahntp::models {
namespace {

using autograd::Variable;
using tensor::Matrix;

graph::Digraph MakeGraph(size_t n, std::vector<graph::Edge> edges) {
  auto g = graph::Digraph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.value();
}

TEST(SparseConvLayerTest, MatchesManualComputation) {
  Rng rng(1);
  tensor::CsrMatrix op = tensor::CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 0.5f}, {1, 0, 1.0f}, {2, 2, 2.0f}});
  SparseConvLayer layer(op, 2, 2, &rng);
  Matrix x = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Variable y = layer.Forward(autograd::Constant(x));
  // Manual: (op * x) * W + b.
  Matrix propagated = tensor::SpMM(op, x);
  auto params = layer.Parameters();
  Matrix expected = tensor::AddRowBroadcast(
      tensor::MatMul(propagated, params[0].value()), params[1].value());
  EXPECT_TRUE(y.value().AllClose(expected, 1e-5f));
}

TEST(SparseConvLayerTest, GradientCheck) {
  Rng rng(2);
  tensor::CsrMatrix op = tensor::CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 0.5f}, {1, 2, -1.0f}, {2, 0, 1.5f}});
  SparseConvLayer layer(op, 2, 2, &rng);
  Matrix x = Matrix::Randn(3, 2, &rng);
  ahntp::testing::ExpectGradientsClose(
      [&layer, &x](const std::vector<Variable>&) {
        Variable y = layer.Forward(autograd::Constant(x));
        return autograd::ReduceSum(autograd::Mul(y, y));
      },
      layer.Parameters());
}

TEST(GatLayerTest, AttentionWeightsSumToOnePerDestination) {
  Rng rng(3);
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {3, 0}});
  AttentionEdges edges = BuildAttentionEdges(g);
  GatLayer layer(edges, 4, 3, 2, &rng);
  Matrix x = Matrix::Randn(4, 3, &rng);
  Variable y = layer.Forward(autograd::Constant(x));
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  // Output rows are convex combinations of transformed neighbour rows:
  // verify by reconstructing from the segment structure. Every node has at
  // least a self-loop, so no output row can be all-zero unless W collapses.
  EXPECT_GT(y.value().MaxAbs(), 0.0f);
}

TEST(GatLayerTest, IsolatedNodeSeesOnlyItself) {
  Rng rng(4);
  graph::Digraph g = MakeGraph(3, {{0, 1}});  // node 2 isolated
  AttentionEdges edges = BuildAttentionEdges(g);
  GatLayer layer(edges, 3, 2, 2, &rng);
  Matrix x = Matrix::FromRows({{1, 0}, {0, 1}, {5, -3}});
  Variable y = layer.Forward(autograd::Constant(x));
  // Node 2's only incidence is its self-loop with attention 1, so its
  // output equals W x_2 exactly.
  auto params = layer.Parameters();
  Matrix wx = tensor::MatMul(x, params[0].value());
  EXPECT_NEAR(y.value().At(2, 0), wx.At(2, 0), 1e-5f);
  EXPECT_NEAR(y.value().At(2, 1), wx.At(2, 1), 1e-5f);
}

TEST(GatLayerTest, GradientCheck) {
  Rng rng(5);
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {3, 2}});
  AttentionEdges edges = BuildAttentionEdges(g);
  GatLayer layer(edges, 4, 2, 2, &rng);
  Matrix x = Matrix::Randn(4, 2, &rng);
  ahntp::testing::ExpectGradientsClose(
      [&layer, &x](const std::vector<Variable>&) {
        Variable y = layer.Forward(autograd::Constant(x));
        return autograd::ReduceSum(autograd::Mul(y, y));
      },
      layer.Parameters());
}

TEST(GatLayerTest, ParameterCount) {
  Rng rng(6);
  graph::Digraph g = MakeGraph(2, {{0, 1}});
  GatLayer layer(BuildAttentionEdges(g), 2, 5, 3, &rng);
  // W (5x3, no bias) + two attention vectors (3x1).
  EXPECT_EQ(layer.NumParameters(), 5u * 3u + 3u + 3u);
}

}  // namespace
}  // namespace ahntp::models
