// Tests for the dynamic trust stack (DESIGN.md §17): the mutable store's
// delta semantics, incremental motif counts and warm-started influence
// against full recomputation, incremental hypergroup maintenance, the
// apply(delta) ≡ rebuild-from-scratch equivalence for fp32 and int8
// inference plans across thread counts, fault-injection rollback, and the
// serve write lane.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/parallel.h"
#include "core/dynamic_pipeline.h"
#include "data/generator.h"
#include "graph/delta.h"
#include "graph/dynamic_motifs.h"
#include "graph/motifs.h"
#include "graph/pagerank.h"
#include "hypergraph/builders.h"
#include "models/inference_plan.h"
#include "serve/dynamic.h"
#include "serve/server.h"

namespace ahntp {
namespace {

using core::DynamicPipelineOptions;
using core::DynamicTrustPipeline;
using graph::GraphDelta;
using hypergraph::Hypergraph;

data::SocialDataset TestDataset() {
  data::GeneratorConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.num_communities = 3;
  config.avg_trust_out_degree = 5.0;
  config.avg_purchases_per_user = 6.0;
  config.seed = 7;
  return data::SocialNetworkGenerator(config).Generate();
}

DynamicPipelineOptions SmallOptions() {
  DynamicPipelineOptions options;
  options.model.hidden_dims = {16, 8};
  return options;
}

std::vector<GraphDelta> TestDeltas(const data::SocialDataset& dataset,
                                   size_t count) {
  data::DeltaStreamConfig config;
  config.num_deltas = count;
  return data::GenerateTrustDeltas(dataset, config);
}

std::vector<data::TrustPair> Queries(const data::SocialDataset& dataset,
                                     size_t n) {
  std::vector<data::TrustPair> pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({static_cast<int>(i % dataset.num_users),
                     static_cast<int>((3 * i + 1) % dataset.num_users),
                     1.0f});
  }
  return pairs;
}

std::vector<std::pair<int, int>> AsPairs(const std::vector<graph::Edge>& edges) {
  std::vector<std::pair<int, int>> out;
  out.reserve(edges.size());
  for (const graph::Edge& e : edges) out.emplace_back(e.src, e.dst);
  return out;
}

serve::TrustQuery MakeQuery(int src, int dst) {
  serve::TrustQuery query;
  query.src = src;
  query.dst = dst;
  return query;
}

void ExpectCsrEq(const tensor::CsrMatrix& a, const tensor::CsrMatrix& b,
                 const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(a.row_ptr(), b.row_ptr()) << what;
  EXPECT_EQ(a.col_idx(), b.col_idx()) << what;
  EXPECT_EQ(a.values(), b.values()) << what;
}

void ExpectHypergraphEq(const Hypergraph& a, const Hypergraph& b,
                        const std::string& what) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  for (size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.EdgeVertices(e), b.EdgeVertices(e)) << what << " edge " << e;
    EXPECT_EQ(a.EdgeWeight(e), b.EdgeWeight(e)) << what << " edge " << e;
  }
}

// ---------------------------------------------------------------------------
// Store semantics.
// ---------------------------------------------------------------------------

TEST(MutableGraphTest, DeltaSemanticsAndGeneration) {
  auto store =
      graph::MutableTrustGraph::Create(5, {{0, 1}, {1, 2}, {2, 3}}).value();
  EXPECT_EQ(store.generation(), 0);
  EXPECT_EQ(store.num_edges(), 3u);

  // Empty delta: applied, generation bumped, nothing changes.
  auto empty = store.Apply(GraphDelta{});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->generation, 1);
  EXPECT_FALSE(empty->structural_change());
  EXPECT_EQ(store.num_edges(), 3u);

  // Duplicate adds, self-loops, and nonexistent removes are ignored and
  // counted; a remove+add of the same edge leaves it present (removes
  // apply first).
  GraphDelta delta;
  delta.add_edges = {{0, 1}, {3, 4}, {3, 4}, {2, 2}};
  delta.remove_edges = {{1, 2}, {4, 0}, {0, 1}};
  delta.add_edges.push_back({0, 1});  // re-add what the remove deleted
  auto receipt = store.Apply(delta);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->generation, 2);
  EXPECT_EQ(receipt->edges_added, 2u);     // {3,4} and the {0,1} re-add
  EXPECT_EQ(receipt->edges_removed, 2u);   // {1,2} and {0,1}
  // Ignored adds: dup {3,4}, self-loop {2,2}, and the second {0,1} (the
  // first one already restored the edge the remove deleted).
  EXPECT_EQ(receipt->adds_ignored, 3u);
  EXPECT_EQ(receipt->removes_ignored, 1u); // {4,0} absent
  EXPECT_TRUE(store.HasEdge(0, 1));
  EXPECT_TRUE(store.HasEdge(3, 4));
  EXPECT_FALSE(store.HasEdge(1, 2));

  // Replaying the same delta is idempotent on membership.
  auto replay = store.Apply(delta);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(AsPairs(store.CanonicalEdges()),
            (std::vector<std::pair<int, int>>{{0, 1}, {2, 3}, {3, 4}}));
}

TEST(MutableGraphTest, CanonicalOrderIndependentOfHistory) {
  // Two stores reaching the same edge set through different mutation
  // histories expose identical canonical edge lists and views.
  auto a = graph::MutableTrustGraph::Create(6, {{0, 1}, {2, 3}}).value();
  GraphDelta d1;
  d1.add_edges = {{4, 5}, {1, 0}};
  ASSERT_TRUE(a.Apply(d1).ok());

  auto b = graph::MutableTrustGraph::Create(
               6, {{4, 5}, {0, 1}, {1, 0}, {2, 3}, {5, 4}})
               .value();
  GraphDelta d2;
  d2.remove_edges = {{5, 4}};
  ASSERT_TRUE(b.Apply(d2).ok());

  EXPECT_EQ(AsPairs(a.CanonicalEdges()), AsPairs(b.CanonicalEdges()));
  EXPECT_EQ(a.View().Adjacency().row_ptr(), b.View().Adjacency().row_ptr());
  EXPECT_EQ(a.View().Adjacency().col_idx(), b.View().Adjacency().col_idx());
}

TEST(MutableGraphTest, CompactionPreservesStateAcrossThreshold) {
  graph::MutableGraphOptions options;
  options.compaction_threshold = 4;
  auto store = graph::MutableTrustGraph::Create(20, {{0, 1}}, options).value();
  std::vector<std::pair<int, int>> expected = {{0, 1}};
  for (int i = 1; i < 12; ++i) {
    GraphDelta delta;
    delta.add_edges = {{i, (i + 7) % 20}};
    if (i % 3 == 0) {
      delta.remove_edges = {{expected.front().first, expected.front().second}};
    }
    auto receipt = store.Apply(delta);
    ASSERT_TRUE(receipt.ok());
    if (i % 3 == 0) expected.erase(expected.begin());
    if ((i + 7) % 20 != i) expected.push_back({i, (i + 7) % 20});
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(AsPairs(store.CanonicalEdges()), expected) << "after delta " << i;
  }
  // Overlays must have folded at least once under threshold 4.
  EXPECT_LT(store.overlay_size(), 8u);
}

// ---------------------------------------------------------------------------
// Incremental analytics: motifs and warm PageRank.
// ---------------------------------------------------------------------------

TEST(DynamicAnalyticsTest, MotifCountsMatchFullRebuildAfterDeltas) {
  data::SocialDataset dataset = TestDataset();
  auto pipeline =
      DynamicTrustPipeline::Create(dataset, SmallOptions()).value();
  ASSERT_NE(pipeline.motif_counts(), nullptr);
  for (const GraphDelta& delta : TestDeltas(dataset, 6)) {
    ASSERT_TRUE(pipeline.ApplyDelta(delta).ok());
    tensor::CsrMatrix incremental = pipeline.motif_counts()->ToCsr();
    tensor::CsrMatrix full = graph::MotifAdjacency(
        pipeline.store().View().Adjacency(), graph::Motif::kM6);
    ExpectCsrEq(incremental, full, "motif counts");
  }
}

TEST(DynamicAnalyticsTest, WarmInfluenceMatchesColdSolve) {
  data::SocialDataset dataset = TestDataset();
  DynamicPipelineOptions options = SmallOptions();
  auto pipeline = DynamicTrustPipeline::Create(dataset, options).value();
  int saved_total = 0;
  for (const GraphDelta& delta : TestDeltas(dataset, 6)) {
    auto outcome = pipeline.ApplyDelta(delta);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->receipt.structural_change()) continue;

    graph::MotifPageRankOptions mpr;
    mpr.alpha = options.model.mpr_alpha;
    mpr.motif = options.model.motif;
    mpr.pagerank = options.model.pagerank;
    std::vector<double> cold =
        graph::MotifPageRankFrom(pipeline.store().View().Adjacency(),
                                 pipeline.motif_counts()->ToCsr(), mpr)
            .scores;
    ASSERT_EQ(pipeline.influence().size(), cold.size());
    // PowerIterate runs its SpMV in float (the score vector is quantized to
    // float every iteration), so warm and cold solves converge to slightly
    // different fixed points of the float-roundtripped map: the reachable
    // agreement floor is ~3e-9 regardless of the 1e-12 stop tolerance.
    // Bound the comparison just above that noise floor.
    for (size_t i = 0; i < cold.size(); ++i) {
      double bound = 1e-9 + 1e-6 * std::abs(cold[i]);
      EXPECT_NEAR(pipeline.influence()[i], cold[i], bound) << "node " << i;
    }
    EXPECT_GT(outcome->pagerank_iterations, 0);
    EXPECT_LE(outcome->pagerank_iterations,
              outcome->pagerank_cold_iterations);
    saved_total += outcome->pagerank_cold_iterations -
                   outcome->pagerank_iterations;
  }
  // Warm starts must actually save iterations over the run (the telemetry
  // the bench reports); equality everywhere would mean the warm start is
  // not wired through.
  EXPECT_GT(saved_total, 0);
}

// ---------------------------------------------------------------------------
// Incremental hypergroups.
// ---------------------------------------------------------------------------

TEST(DynamicHypergroupTest, AllFourGroupsMatchBuildersAfterDeltas) {
  data::SocialDataset dataset = TestDataset();
  DynamicPipelineOptions options = SmallOptions();
  auto pipeline = DynamicTrustPipeline::Create(dataset, options).value();
  for (const GraphDelta& delta : TestDeltas(dataset, 6)) {
    ASSERT_TRUE(pipeline.ApplyDelta(delta).ok());
    const graph::Digraph& view = pipeline.store().View();
    ExpectHypergraphEq(
        pipeline.social_hypergroup(),
        hypergraph::BuildSocialInfluenceHypergroup(
            view, pipeline.influence(), options.model.social_top_k),
        "social");
    ExpectHypergraphEq(pipeline.attribute_hypergroup(),
                       hypergraph::BuildAttributeHypergroup(
                           view.num_nodes(), pipeline.dataset().attributes,
                           options.model.attribute_min_size),
                       "attribute");
    ExpectHypergraphEq(pipeline.pairwise_hypergroup(),
                       hypergraph::BuildPairwiseHypergroup(view), "pairwise");
    hypergraph::MultiHopOptions hop;
    hop.num_hops = options.model.multi_hop;
    hop.max_edge_size = options.model.multi_hop_max_edge_size;
    ExpectHypergraphEq(pipeline.multihop_hypergroup(),
                       hypergraph::BuildMultiHopHypergroup(view, hop),
                       "multi-hop");
  }
}

// ---------------------------------------------------------------------------
// The end-to-end equivalence oracle: apply(delta) ≡ rebuild, bitwise, for
// fp32 and int8 plans, K ∈ {1, 3}, threads ∈ {1, 2, 8}.
// ---------------------------------------------------------------------------

struct OracleCase {
  int social_top_k;
  models::PlanPrecision precision;
};

class DynamicOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(DynamicOracleTest, IncrementalMatchesRebuildBitwise) {
  const OracleCase& param = GetParam();
  data::SocialDataset dataset = TestDataset();
  DynamicPipelineOptions options = SmallOptions();
  options.model.social_top_k = param.social_top_k;
  auto pipeline = DynamicTrustPipeline::Create(dataset, options).value();
  pipeline.predictor().SetInferencePrecision(param.precision);
  // Build the plan tables up front so ApplyDelta patches rows instead of
  // the first prediction paying a full encode.
  pipeline.predictor().WarmInferencePlan();

  std::vector<data::TrustPair> pairs = Queries(dataset, 24);
  for (const GraphDelta& delta : TestDeltas(dataset, 4)) {
    ASSERT_TRUE(pipeline.ApplyDelta(delta).ok());
    auto oracle = pipeline.RebuildFromScratch();
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    oracle->predictor().SetInferencePrecision(param.precision);

    std::vector<float> expected = oracle->predictor().PredictProbabilities(pairs);
    for (int threads : {1, 2, 8}) {
      SetNumThreads(threads);
      std::vector<float> got =
          pipeline.predictor().PredictProbabilities(pairs);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "pair " << i << " threads=" << threads
            << " K=" << param.social_top_k;
      }
    }
    SetNumThreads(0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionAndTopK, DynamicOracleTest,
    ::testing::Values(
        OracleCase{1, models::PlanPrecision::kFloat32},
        OracleCase{3, models::PlanPrecision::kFloat32},
        OracleCase{1, models::PlanPrecision::kInt8},
        OracleCase{3, models::PlanPrecision::kInt8}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return std::string("K") + std::to_string(info.param.social_top_k) +
             (info.param.precision == models::PlanPrecision::kInt8
                  ? "_int8"
                  : "_fp32");
    });

TEST(DynamicShardedTest, ShardedPlanPatchedRowsMatchOracle) {
  data::SocialDataset dataset = TestDataset();
  auto pipeline =
      DynamicTrustPipeline::Create(dataset, SmallOptions()).value();
  const std::string spill_dir =
      ::testing::TempDir() + "/dynamic_shard_" + std::to_string(getpid());
  models::ShardedPlanOptions sharded;
  sharded.num_shards = 4;
  sharded.max_resident_shards = 2;
  sharded.spill_dir = spill_dir;
  pipeline.predictor().EnableShardedInference(sharded);
  pipeline.predictor().WarmInferencePlan();

  std::vector<data::TrustPair> pairs = Queries(dataset, 24);
  for (const GraphDelta& delta : TestDeltas(dataset, 3)) {
    ASSERT_TRUE(pipeline.ApplyDelta(delta).ok());
    auto oracle = pipeline.RebuildFromScratch();
    ASSERT_TRUE(oracle.ok());
    std::vector<float> expected =
        oracle->predictor().PredictProbabilities(pairs);
    std::vector<float> got = pipeline.predictor().PredictProbabilities(pairs);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "pair " << i;
    }
  }
  std::filesystem::remove_all(spill_dir);
}

// ---------------------------------------------------------------------------
// Fault rollback: both sites leave the pipeline at the previous generation
// with every derived structure intact.
// ---------------------------------------------------------------------------

class DynamicFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Disable(); }
  void TearDown() override { fault::Disable(); }
};

TEST_F(DynamicFaultTest, StoreApplyFaultRollsBack) {
  auto store = graph::MutableTrustGraph::Create(5, {{0, 1}, {1, 2}}).value();
  GraphDelta delta;
  delta.add_edges = {{2, 3}};
  ASSERT_TRUE(store.Apply(delta).ok());
  EXPECT_EQ(store.generation(), 1);

  ASSERT_TRUE(fault::EnableFromSpec("graph.delta.apply@1").ok());
  GraphDelta second;
  second.add_edges = {{3, 4}};
  second.remove_edges = {{0, 1}};
  auto failed = store.Apply(second);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  fault::Disable();

  // Bit-identical to the pre-apply state: same generation, same edges.
  EXPECT_EQ(store.generation(), 1);
  EXPECT_TRUE(store.HasEdge(0, 1));
  EXPECT_FALSE(store.HasEdge(3, 4));

  // The store still works after the fault.
  ASSERT_TRUE(store.Apply(second).ok());
  EXPECT_EQ(store.generation(), 2);
  EXPECT_TRUE(store.HasEdge(3, 4));
  EXPECT_FALSE(store.HasEdge(0, 1));
}

TEST_F(DynamicFaultTest, PlanRefreshFaultRevertsStoreAndDerivedState) {
  data::SocialDataset dataset = TestDataset();
  auto pipeline =
      DynamicTrustPipeline::Create(dataset, SmallOptions()).value();
  std::vector<data::TrustPair> pairs = Queries(dataset, 16);
  std::vector<float> before = pipeline.predictor().PredictProbabilities(pairs);
  const int64_t generation = pipeline.generation();
  std::vector<std::pair<int, int>> edges = AsPairs(pipeline.store().CanonicalEdges());

  std::vector<GraphDelta> deltas = TestDeltas(dataset, 2);
  ASSERT_TRUE(fault::EnableFromSpec("plan.delta.refresh@1").ok());
  auto failed = pipeline.ApplyDelta(deltas[0]);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  fault::Disable();

  // Store rolled back to the previous generation; derived state (motifs,
  // influence, hypergroups, plans) was never touched, so predictions are
  // bit-identical.
  EXPECT_EQ(pipeline.generation(), generation);
  EXPECT_EQ(AsPairs(pipeline.store().CanonicalEdges()), edges);
  std::vector<float> after = pipeline.predictor().PredictProbabilities(pairs);
  EXPECT_EQ(before, after);

  // And the cascade still applies cleanly afterwards, matching the oracle.
  ASSERT_TRUE(pipeline.ApplyDelta(deltas[0]).ok());
  auto oracle = pipeline.RebuildFromScratch();
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(pipeline.predictor().PredictProbabilities(pairs),
            oracle->predictor().PredictProbabilities(pairs));
}

// ---------------------------------------------------------------------------
// Serve write lane: mutations between read segments, generation-keyed
// flushes, deterministic interleaving.
// ---------------------------------------------------------------------------

TEST(ServeMutationTest, WriteLaneAppliesBetweenSegments) {
  data::SocialDataset dataset = TestDataset();
  auto pipeline =
      DynamicTrustPipeline::Create(dataset, SmallOptions()).value();
  serve::DynamicBackend backend(&pipeline);
  std::vector<GraphDelta> deltas = TestDeltas(dataset, 2);

  serve::ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch_size = 8;
  options.score_cache_entries = 64;
  serve::TrustServer server(options, &backend, nullptr, &backend);

  // Closed loop: reads, a mutation, more reads, a second mutation.
  std::vector<data::TrustPair> pairs = Queries(dataset, 6);
  std::vector<std::future<serve::TrustResponse>> reads;
  std::vector<std::future<serve::MutationResponse>> writes;
  for (const auto& p : pairs) {
    reads.push_back(server.Submit(MakeQuery(p.src, p.dst)));
  }
  writes.push_back(server.SubmitMutation(deltas[0]));
  for (const auto& p : pairs) {
    reads.push_back(server.Submit(MakeQuery(p.src, p.dst)));
  }
  writes.push_back(server.SubmitMutation(deltas[1]));
  server.Start();
  server.Shutdown();

  for (auto& read : reads) {
    serve::TrustResponse response = read.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  serve::MutationResponse first = writes[0].get();
  serve::MutationResponse second = writes[1].get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_EQ(first.generation, 1);
  EXPECT_EQ(second.generation, 2);
  EXPECT_EQ(pipeline.generation(), 2);

  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.mutations_submitted, 2);
  EXPECT_EQ(stats.mutations_applied, 2);
  EXPECT_EQ(stats.mutations_failed, 0);
  // The second read wave hit a fresh generation, so the cache flushed at
  // least once after the first mutation.
  EXPECT_GE(stats.cache_flushes, 1);
  EXPECT_EQ(stats.ok, static_cast<int64_t>(reads.size()));
}

TEST(ServeMutationTest, NoSinkAndShutdownResolveFailedPrecondition) {
  data::SocialDataset dataset = TestDataset();
  auto pipeline =
      DynamicTrustPipeline::Create(dataset, SmallOptions()).value();
  serve::DynamicBackend backend(&pipeline);
  std::vector<GraphDelta> deltas = TestDeltas(dataset, 1);

  {
    // Read-only server: the write lane rejects immediately.
    serve::ServeOptions options;
    serve::TrustServer server(options, &backend, nullptr);
    auto future = server.SubmitMutation(deltas[0]);
    serve::MutationResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(server.Stats().mutations_rejected, 1);
  }
  {
    // Enqueued but never started: shutdown drains the promise.
    serve::ServeOptions options;
    serve::TrustServer server(options, &backend, nullptr, &backend);
    auto future = server.SubmitMutation(deltas[0]);
    server.Shutdown();
    serve::MutationResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(pipeline.generation(), 0);  // never applied
    EXPECT_EQ(server.Stats().mutations_failed, 1);
  }
}

TEST(ServeMutationTest, MutationFaultKeepsPreviousGenerationServing) {
  data::SocialDataset dataset = TestDataset();
  auto pipeline =
      DynamicTrustPipeline::Create(dataset, SmallOptions()).value();
  serve::DynamicBackend backend(&pipeline);
  std::vector<GraphDelta> deltas = TestDeltas(dataset, 1);
  std::vector<data::TrustPair> pairs = Queries(dataset, 4);
  std::vector<float> before = pipeline.predictor().PredictProbabilities(pairs);

  serve::ServeOptions options;
  serve::TrustServer server(options, &backend, nullptr, &backend);
  auto write = server.SubmitMutation(deltas[0]);
  std::vector<std::future<serve::TrustResponse>> reads;
  for (const auto& p : pairs) reads.push_back(server.Submit(MakeQuery(p.src, p.dst)));

  ASSERT_TRUE(fault::EnableFromSpec("plan.delta.refresh@1").ok());
  server.Start();
  server.Shutdown();
  fault::Disable();

  serve::MutationResponse response = write.get();
  EXPECT_EQ(response.status.code(), StatusCode::kInternal);
  EXPECT_EQ(pipeline.generation(), 0);
  for (size_t i = 0; i < reads.size(); ++i) {
    serve::TrustResponse read = reads[i].get();
    ASSERT_TRUE(read.status.ok());
    EXPECT_EQ(read.score, before[i]) << "pair " << i;
  }
  EXPECT_EQ(server.Stats().mutations_failed, 1);
}

}  // namespace
}  // namespace ahntp
