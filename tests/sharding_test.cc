// Sharded build + shard-aware inference (DESIGN.md §14): the partitioner,
// halo subgraphs, sharded analytics and hypergroup builders, the streaming
// generator, and the out-of-core inference plan. The load-bearing property
// throughout is *bitwise* parity with the monolithic (K=1) path at every
// combination of shard count, sharding mode, and thread count.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/parallel.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "graph/motifs.h"
#include "graph/pagerank.h"
#include "graph/sharding.h"
#include "hypergraph/builders.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"
#include "serve/backend.h"
#include "tensor/csr.h"

namespace ahntp {
namespace {

using graph::Digraph;
using graph::ShardingMode;
using graph::ShardingOptions;
using graph::UserSharding;
using tensor::CsrMatrix;

/// Bitwise CSR equality: structure and float bits, not approximate values.
void ExpectCsrBitwiseEqual(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col_idx(), b.col_idx());
  ASSERT_EQ(a.values().size(), b.values().size());
  for (size_t i = 0; i < a.values().size(); ++i) {
    EXPECT_EQ(a.values()[i], b.values()[i]) << "value " << i;
  }
}

void ExpectHypergraphEqual(const hypergraph::Hypergraph& a,
                           const hypergraph::Hypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.EdgeVertices(e), b.EdgeVertices(e)) << "edge " << e;
    EXPECT_EQ(a.EdgeWeight(e), b.EdgeWeight(e)) << "edge " << e;
  }
}

Digraph TestGraph(double scale = 0.05) {
  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::EpinionsLike(scale))
          .Generate();
  auto graph = dataset.GraphFromEdges(dataset.trust_edges);
  AHNTP_CHECK_OK(graph.status());
  return std::move(graph).value();
}

/// The parity sweep every sharded component runs under: contiguous and
/// hashed partitions, K in {1, 3}, threads in {1, 2, 8}.
std::vector<ShardingOptions> ShardingSweep() {
  return {{1, ShardingMode::kContiguous},
          {3, ShardingMode::kContiguous},
          {3, ShardingMode::kHashed}};
}

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(UserShardingTest, ContiguousPartitionIsBalancedAndComplete) {
  auto sharding = UserSharding::Create(10, {3, ShardingMode::kContiguous});
  ASSERT_TRUE(sharding.ok());
  const UserSharding& s = sharding.value();
  // 10 = 4 + 3 + 3; first N % K shards take the extra user.
  EXPECT_EQ(s.UsersOf(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.UsersOf(1), (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(s.UsersOf(2), (std::vector<int>{7, 8, 9}));
  for (int u = 0; u < 10; ++u) {
    const std::vector<int>& owned = s.UsersOf(s.ShardOf(u));
    EXPECT_TRUE(std::find(owned.begin(), owned.end(), u) != owned.end());
  }
}

TEST(UserShardingTest, HashedPartitionCoversEveryUserExactlyOnce) {
  auto sharding = UserSharding::Create(257, {4, ShardingMode::kHashed});
  ASSERT_TRUE(sharding.ok());
  const UserSharding& s = sharding.value();
  std::vector<int> seen(257, 0);
  for (int k = 0; k < 4; ++k) {
    int prev = -1;
    for (int u : s.UsersOf(k)) {
      EXPECT_GT(u, prev) << "owned lists must ascend";
      prev = u;
      EXPECT_EQ(s.ShardOf(u), k);
      ++seen[static_cast<size_t>(u)];
    }
  }
  for (int u = 0; u < 257; ++u) EXPECT_EQ(seen[static_cast<size_t>(u)], 1);
}

TEST(UserShardingTest, DeterministicAcrossInstances) {
  for (ShardingMode mode :
       {ShardingMode::kContiguous, ShardingMode::kHashed}) {
    auto a = UserSharding::Create(100, {5, mode});
    auto b = UserSharding::Create(100, {5, mode});
    ASSERT_TRUE(a.ok() && b.ok());
    for (int u = 0; u < 100; ++u) {
      EXPECT_EQ(a.value().ShardOf(u), b.value().ShardOf(u));
    }
  }
}

TEST(UserShardingTest, RejectsDegenerateRequests) {
  EXPECT_FALSE(UserSharding::Create(10, {0, ShardingMode::kContiguous}).ok());
  EXPECT_FALSE(UserSharding::Create(10, {-3, ShardingMode::kContiguous}).ok());
  EXPECT_FALSE(UserSharding::Create(0, {1, ShardingMode::kContiguous}).ok());
  // K > N would manufacture empty shards.
  EXPECT_FALSE(UserSharding::Create(3, {5, ShardingMode::kContiguous}).ok());
  EXPECT_FALSE(UserSharding::Create(3, {5, ShardingMode::kHashed}).ok());
  // Single user, single shard is fine.
  auto single = UserSharding::Create(1, {1, ShardingMode::kContiguous});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value().ShardOf(0), 0);
}

// ---------------------------------------------------------------------------
// Shard subgraphs
// ---------------------------------------------------------------------------

TEST(ShardSubgraphTest, LocalIdsAscendAndEdgesMatchGlobal) {
  Digraph graph = TestGraph();
  for (const ShardingOptions& opts : ShardingSweep()) {
    auto sharding = UserSharding::Create(graph.num_nodes(), opts);
    ASSERT_TRUE(sharding.ok());
    size_t owned_total = 0;
    for (int k = 0; k < opts.num_shards; ++k) {
      auto sub_result =
          graph::BuildShardSubgraph(graph, sharding.value(), k, 1);
      ASSERT_TRUE(sub_result.ok());
      const graph::ShardSubgraph& sub = sub_result.value();
      owned_total += sub.num_owned;
      // local_to_global ascends; is_owned marks exactly the shard's users.
      for (size_t i = 1; i < sub.local_to_global.size(); ++i) {
        EXPECT_LT(sub.local_to_global[i - 1], sub.local_to_global[i]);
      }
      for (size_t i = 0; i < sub.local_to_global.size(); ++i) {
        EXPECT_EQ(sub.is_owned[i] != 0,
                  sharding.value().ShardOf(sub.local_to_global[i]) == k);
      }
      // Every local edge maps to the same global edge it indexes.
      ASSERT_EQ(sub.graph.num_edges(), sub.global_edge_index.size());
      for (size_t e = 0; e < sub.graph.num_edges(); ++e) {
        const graph::Edge& local = sub.graph.edges()[e];
        const graph::Edge& global =
            graph.edges()[static_cast<size_t>(sub.global_edge_index[e])];
        EXPECT_EQ(sub.GlobalId(local.src), global.src);
        EXPECT_EQ(sub.GlobalId(local.dst), global.dst);
      }
      // Halo closure: every global edge among subgraph vertices is present.
      size_t expected = 0;
      for (const graph::Edge& ge : graph.edges()) {
        if (sub.LocalId(ge.src) >= 0 && sub.LocalId(ge.dst) >= 0) ++expected;
      }
      EXPECT_EQ(sub.graph.num_edges(), expected);
    }
    EXPECT_EQ(owned_total, graph.num_nodes());
  }
}

TEST(ShardSubgraphTest, RejectsBadArguments) {
  Digraph graph = TestGraph();
  auto sharding =
      UserSharding::Create(graph.num_nodes(), {2, ShardingMode::kContiguous});
  ASSERT_TRUE(sharding.ok());
  EXPECT_FALSE(graph::BuildShardSubgraph(graph, sharding.value(), -1, 1).ok());
  EXPECT_FALSE(graph::BuildShardSubgraph(graph, sharding.value(), 2, 1).ok());
  EXPECT_FALSE(graph::BuildShardSubgraph(graph, sharding.value(), 0, -1).ok());
  Digraph wrong_size(graph.num_nodes() + 1);
  EXPECT_FALSE(
      graph::BuildShardSubgraph(wrong_size, sharding.value(), 0, 1).ok());
}

// ---------------------------------------------------------------------------
// Sharded analytics: bitwise vs monolithic at threads 1/2/8
// ---------------------------------------------------------------------------

TEST(ShardedAnalyticsTest, AdjacencyAndMotifBitwiseAcrossThreads) {
  Digraph graph = TestGraph();
  const CsrMatrix mono_adj = graph.Adjacency();
  const CsrMatrix mono_motif =
      graph::MotifAdjacency(mono_adj, graph::Motif::kM6);
  for (const ShardingOptions& opts : ShardingSweep()) {
    auto sharding = UserSharding::Create(graph.num_nodes(), opts);
    ASSERT_TRUE(sharding.ok());
    for (int threads : {1, 2, 8}) {
      SetNumThreads(threads);
      ExpectCsrBitwiseEqual(graph::ShardedAdjacency(graph, sharding.value()),
                            mono_adj);
      ExpectCsrBitwiseEqual(
          graph::ShardedMotifAdjacency(graph, sharding.value(),
                                       graph::Motif::kM6),
          mono_motif);
    }
    SetNumThreads(0);
  }
}

TEST(ShardedAnalyticsTest, PageRankBitwiseAcrossThreads) {
  Digraph graph = TestGraph();
  const std::vector<double> mono_pr = graph::PageRank(graph.Adjacency());
  const graph::MotifPageRankResult mono_mpr =
      graph::MotifPageRank(graph.Adjacency());
  for (const ShardingOptions& opts : ShardingSweep()) {
    auto sharding = UserSharding::Create(graph.num_nodes(), opts);
    ASSERT_TRUE(sharding.ok());
    for (int threads : {1, 2, 8}) {
      SetNumThreads(threads);
      std::vector<double> pr = graph::ShardedPageRank(graph, sharding.value());
      ASSERT_EQ(pr.size(), mono_pr.size());
      for (size_t i = 0; i < pr.size(); ++i) {
        EXPECT_EQ(pr[i], mono_pr[i]) << "PageRank node " << i;
      }
      graph::MotifPageRankResult mpr =
          graph::ShardedMotifPageRank(graph, sharding.value());
      ASSERT_EQ(mpr.scores.size(), mono_mpr.scores.size());
      for (size_t i = 0; i < mpr.scores.size(); ++i) {
        EXPECT_EQ(mpr.scores[i], mono_mpr.scores[i]) << "MPR node " << i;
      }
      ExpectCsrBitwiseEqual(mpr.combined_weights, mono_mpr.combined_weights);
      ExpectCsrBitwiseEqual(mpr.motif_adjacency, mono_mpr.motif_adjacency);
    }
    SetNumThreads(0);
  }
}

// ---------------------------------------------------------------------------
// Sharded hypergroup builders: bitwise vs monolithic at threads 1/2/8
// ---------------------------------------------------------------------------

TEST(ShardedBuildersTest, AllFourHypergroupsBitwiseAcrossThreads) {
  data::SocialDataset dataset = data::SocialNetworkGenerator(
                                    data::GeneratorConfig::EpinionsLike(0.05))
                                    .Generate();
  auto graph_result = dataset.GraphFromEdges(dataset.trust_edges);
  ASSERT_TRUE(graph_result.ok());
  Digraph graph = std::move(graph_result).value();
  std::vector<std::vector<int>> attributes = {dataset.communities};

  hypergraph::SocialInfluenceOptions social_opts;
  hypergraph::MultiHopOptions multihop_opts;
  multihop_opts.num_hops = 2;
  const hypergraph::Hypergraph mono_social =
      hypergraph::BuildSocialInfluenceHypergroup(graph, social_opts);
  const hypergraph::Hypergraph mono_attr =
      hypergraph::BuildAttributeHypergroup(dataset.num_users, attributes);
  const hypergraph::Hypergraph mono_pair =
      hypergraph::BuildPairwiseHypergroup(graph);
  const hypergraph::Hypergraph mono_hop =
      hypergraph::BuildMultiHopHypergroup(graph, multihop_opts);

  for (const ShardingOptions& opts : ShardingSweep()) {
    auto sharding = UserSharding::Create(dataset.num_users, opts);
    ASSERT_TRUE(sharding.ok());
    for (int threads : {1, 2, 8}) {
      SetNumThreads(threads);
      ExpectHypergraphEqual(hypergraph::BuildSocialInfluenceHypergroupSharded(
                                graph, sharding.value(), social_opts),
                            mono_social);
      ExpectHypergraphEqual(hypergraph::BuildAttributeHypergroupSharded(
                                sharding.value(), attributes),
                            mono_attr);
      ExpectHypergraphEqual(
          hypergraph::BuildPairwiseHypergroupSharded(graph, sharding.value()),
          mono_pair);
      ExpectHypergraphEqual(hypergraph::BuildMultiHopHypergroupSharded(
                                graph, sharding.value(), multihop_opts),
                            mono_hop);
    }
    SetNumThreads(0);
  }
}

// ---------------------------------------------------------------------------
// Streaming generation
// ---------------------------------------------------------------------------

TEST(StreamingGeneratorTest, StreamReassemblesToGenerateExactly) {
  data::GeneratorConfig config = data::GeneratorConfig::EpinionsLike(0.05);
  data::SocialDataset dataset = data::SocialNetworkGenerator(config).Generate();

  std::vector<data::StreamedEdge> streamed;
  std::vector<int> communities;
  size_t count = data::SocialNetworkGenerator(config).StreamTrustEdges(
      [&](const data::StreamedEdge& e) { streamed.push_back(e); },
      &communities);
  ASSERT_EQ(count, dataset.trust_edges.size());
  ASSERT_EQ(streamed.size(), dataset.trust_edges.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].index, static_cast<int64_t>(i));
    EXPECT_EQ(streamed[i].src, dataset.trust_edges[i].src);
    EXPECT_EQ(streamed[i].dst, dataset.trust_edges[i].dst);
  }
  EXPECT_EQ(communities, dataset.communities);
}

TEST(StreamingGeneratorTest, ShardedEdgeBufferRoutesAndBoundsBuffering) {
  // Capacity 4: every flush before FlushAll must carry at most 4 edges.
  std::vector<std::vector<data::StreamedEdge>> delivered(3);
  size_t flushes = 0;
  bool draining = false;
  data::ShardedEdgeBuffer buffer(
      3, 4, [&](int shard, const std::vector<data::StreamedEdge>& edges) {
        ++flushes;
        if (!draining) {
          EXPECT_LE(edges.size(), 4u);
        }
        auto& out = delivered[static_cast<size_t>(shard)];
        out.insert(out.end(), edges.begin(), edges.end());
      });
  std::vector<std::vector<int64_t>> expected(3);
  for (int64_t i = 0; i < 100; ++i) {
    int src_shard = static_cast<int>(i % 3);
    int dst_shard = static_cast<int>((i / 3) % 3);
    buffer.Route({static_cast<int>(i), static_cast<int>(i + 1), i}, src_shard,
                 dst_shard);
    expected[static_cast<size_t>(src_shard)].push_back(i);
    if (dst_shard != src_shard) {
      expected[static_cast<size_t>(dst_shard)].push_back(i);
    }
  }
  draining = true;
  buffer.FlushAll();
  EXPECT_GT(flushes, 3u);  // bounded capacity forced intermediate flushes
  for (int k = 0; k < 3; ++k) {
    const auto& got = delivered[static_cast<size_t>(k)];
    const auto& want = expected[static_cast<size_t>(k)];
    ASSERT_EQ(got.size(), want.size()) << "shard " << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].index, want[i]) << "shard " << k << " pos " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Out-of-core inference plan
// ---------------------------------------------------------------------------

struct PredictorFixture {
  data::SocialDataset dataset;
  data::TrustSplit split;
  Digraph graph;
  tensor::Matrix features;
  Rng rng{1234};
  std::unique_ptr<models::TrustPredictor> predictor;

  explicit PredictorFixture(double scale = 0.04)
      : dataset(data::SocialNetworkGenerator(
                    data::GeneratorConfig::EpinionsLike(scale))
                    .Generate()),
        split(data::MakeSplit(dataset)) {
    auto graph_result = dataset.GraphFromEdges(split.train_positive);
    AHNTP_CHECK_OK(graph_result.status());
    graph = std::move(graph_result).value();
    features = data::BuildFeatureMatrix(dataset);
    models::ModelInputs inputs;
    inputs.features = &features;
    inputs.graph = &graph;
    inputs.dataset = &dataset;
    inputs.rng = &rng;
    auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    AHNTP_CHECK_OK(created.status());
    predictor = std::move(created).value();
    predictor->SetTraining(false);
  }

  std::vector<data::TrustPair> Pairs(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(split.test_pairs[i % split.test_pairs.size()]);
    }
    return pairs;
  }
};

class ShardedPlanTest : public ::testing::Test {
 protected:
  // Per-process spill root: ctest runs each test as its own process in the
  // same working directory, so a shared literal directory lets one test's
  // TearDown delete blocks a concurrently running sibling is faulting in.
  static std::string SpillDir() {
    return "sharding_test_spill_" + std::to_string(::getpid());
  }

  void TearDown() override { std::filesystem::remove_all(SpillDir()); }
};

TEST_F(ShardedPlanTest, ScoresBitIdenticalToMonolithicPlan) {
  PredictorFixture fx;
  std::vector<data::TrustPair> pairs = fx.Pairs(64);
  std::vector<float> mono = fx.predictor->PredictProbabilities(pairs);
  for (const ShardingOptions& opts : ShardingSweep()) {
    for (int resident : {1, 2}) {
      for (int threads : {1, 2, 8}) {
        SetNumThreads(threads);
        models::ShardedPlanOptions plan_opts;
        plan_opts.num_shards = opts.num_shards;
        plan_opts.mode = opts.mode;
        plan_opts.max_resident_shards = resident;
        plan_opts.spill_dir = SpillDir();
        fx.predictor->EnableShardedInference(plan_opts);
        std::vector<float> sharded =
            fx.predictor->PredictProbabilities(pairs);
        ASSERT_EQ(sharded.size(), mono.size());
        for (size_t i = 0; i < mono.size(); ++i) {
          EXPECT_EQ(sharded[i], mono[i])
              << "pair " << i << " K=" << opts.num_shards
              << " resident=" << resident << " threads=" << threads;
        }
      }
      SetNumThreads(0);
    }
  }
  fx.predictor->DisableShardedInference();
}

TEST_F(ShardedPlanTest, BoundedResidencyEvictsAndCountsFaults) {
  metrics::Enable();
  metrics::Reset();
  PredictorFixture fx;
  models::ShardedPlanOptions plan_opts;
  plan_opts.num_shards = 4;
  plan_opts.max_resident_shards = 1;
  plan_opts.spill_dir = SpillDir();
  fx.predictor->EnableShardedInference(plan_opts);
  fx.predictor->WarmInferencePlan();
  const models::ShardedInferencePlan* plan = fx.predictor->sharded_plan();
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(plan->store(), nullptr);
  EXPECT_EQ(plan->store()->max_resident(), 1);

  int64_t faults_before = metrics::GetCounter("infer.shard_faults").Value();
  int64_t evictions_before =
      metrics::GetCounter("infer.shard_evictions").Value();
  // Pairs spanning all users force cross-shard faults under a 1-block cap.
  (void)fx.predictor->PredictProbabilities(fx.Pairs(32));
  EXPECT_LE(plan->store()->num_resident(), 1);
  EXPECT_GT(metrics::GetCounter("infer.shard_faults").Value(), faults_before);
  EXPECT_GT(metrics::GetCounter("infer.shard_evictions").Value(),
            evictions_before);
  // Residency never exceeds one block's bytes (plus slack for dim rounding).
  EXPECT_LE(plan->store()->resident_bytes(),
            (fx.dataset.num_users / 4 + 1) * sizeof(float) * 4096);
  fx.predictor->DisableShardedInference();
  metrics::Disable();
}

TEST_F(ShardedPlanTest, CorruptBlockSurfacesAsCorruption) {
  PredictorFixture fx;
  models::ShardedPlanOptions plan_opts;
  plan_opts.num_shards = 2;
  plan_opts.max_resident_shards = 1;
  plan_opts.spill_dir = SpillDir();
  fx.predictor->EnableShardedInference(plan_opts);
  fx.predictor->WarmInferencePlan();
  // Flip a payload byte in every spilled block; the next fault of either
  // shard must fail the CRC, not serve garbage embeddings.
  size_t flipped = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(SpillDir())) {
    if (!entry.is_regular_file()) continue;
    std::fstream f(entry.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(20);  // past magic + shard + rows + cols, into the payload
    char byte = 0;
    f.get(byte);
    f.seekp(20);
    f.put(static_cast<char>(byte ^ 0x5A));
    ++flipped;
  }
  ASSERT_GT(flipped, 0u);
  auto* plan = const_cast<models::ShardedInferencePlan*>(
      fx.predictor->sharded_plan());
  // Drop residency so Score must fault from the corrupt files.
  ASSERT_TRUE(plan->mutable_store() != nullptr);
  auto result = plan->mutable_store()->Block(0);
  // Block 0 may still be resident from the warm; fault the other shard too.
  auto result1 = plan->mutable_store()->Block(1);
  EXPECT_TRUE(!result.ok() || !result1.ok());
  StatusCode code = !result.ok() ? result.status().code()
                                 : result1.status().code();
  EXPECT_EQ(code, StatusCode::kCorruption);
  fx.predictor->DisableShardedInference();
}

TEST_F(ShardedPlanTest, InvalidationRebuildsAfterWeightChange) {
  metrics::Enable();
  metrics::Reset();
  PredictorFixture fx;
  models::ShardedPlanOptions plan_opts;
  plan_opts.num_shards = 2;
  plan_opts.spill_dir = SpillDir();
  fx.predictor->EnableShardedInference(plan_opts);
  std::vector<data::TrustPair> pairs = fx.Pairs(8);
  std::vector<float> before = fx.predictor->PredictProbabilities(pairs);
  int64_t builds_before =
      metrics::GetCounter("infer.shard_plan_builds").Value();
  fx.predictor->InvalidateCaches();
  std::vector<float> after = fx.predictor->PredictProbabilities(pairs);
  EXPECT_EQ(metrics::GetCounter("infer.shard_plan_builds").Value(),
            builds_before + 1);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "same weights must re-encode identically";
  }
  fx.predictor->DisableShardedInference();
  metrics::Disable();
}

TEST_F(ShardedPlanTest, ModelBackendShardedScoresMatchMonolithic) {
  PredictorFixture mono_fx;
  std::vector<data::TrustPair> pairs = mono_fx.Pairs(32);
  std::vector<float> mono = mono_fx.predictor->PredictProbabilities(pairs);

  PredictorFixture sharded_fx;
  models::ShardedPlanOptions plan_opts;
  plan_opts.num_shards = 3;
  plan_opts.max_resident_shards = 2;
  plan_opts.spill_dir = SpillDir();
  // The factory matters only for Reload; scoring uses the initial model.
  serve::ModelBackend backend([]() { return nullptr; },
                              std::move(sharded_fx.predictor), plan_opts);
  auto result = backend.ScoreBatch(pairs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), mono.size());
  for (size_t i = 0; i < mono.size(); ++i) {
    EXPECT_EQ(result.value()[i], mono[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace ahntp
