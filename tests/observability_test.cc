// Tests for the observability layer: metrics registry semantics, shard-fold
// determinism across thread counts, tracer span nesting (including across
// ParallelFor workers), export formats, and the disabled fast path.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace ahntp {
namespace {

// Every test begins from a clean, enabled registry and restores the
// disabled default on exit so unrelated tests in this binary see the
// zero-overhead path.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::Disable();
    metrics::Enable();
  }
  void TearDown() override { metrics::Disable(); }
};

TEST_F(MetricsTest, CounterMath) {
  metrics::Counter& c = metrics::GetCounter("test.counter_math");
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
}

TEST_F(MetricsTest, GetterReturnsSameMetric) {
  metrics::Counter& a = metrics::GetCounter("test.same");
  metrics::Counter& b = metrics::GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  metrics::Gauge& g = metrics::GetGauge("test.gauge");
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_EQ(g.Value(), -2.25);
}

TEST_F(MetricsTest, HistogramCountsSumAndBuckets) {
  metrics::Histogram& h = metrics::GetHistogram("test.hist");
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(0.0);   // bucket 0
  h.Observe(-1.0);  // bucket 0
  EXPECT_EQ(h.Count(), 5);
  EXPECT_NEAR(h.Sum(), 4.0, 1e-6);
  EXPECT_EQ(h.BucketCount(metrics::HistogramBucketIndex(0.5)), 2);
  EXPECT_EQ(h.BucketCount(metrics::HistogramBucketIndex(4.0)), 1);
  EXPECT_EQ(h.BucketCount(0), 2);
}

TEST_F(MetricsTest, HistogramBucketIndexEdges) {
  // Non-positive (and NaN) observations land in the catch-all bucket 0.
  EXPECT_EQ(metrics::HistogramBucketIndex(0.0), 0u);
  EXPECT_EQ(metrics::HistogramBucketIndex(-3.0), 0u);
  // Buckets are [2^(i-33), 2^(i-32)): 1.0 = 2^0 starts bucket 33.
  EXPECT_EQ(metrics::HistogramBucketIndex(1.0), 33u);
  EXPECT_EQ(metrics::HistogramBucketIndex(1.999), 33u);
  EXPECT_EQ(metrics::HistogramBucketIndex(2.0), 34u);
  // Monotone in the value, clamped to the last bucket.
  EXPECT_EQ(metrics::HistogramBucketIndex(1e300),
            metrics::kHistogramBuckets - 1);
  EXPECT_EQ(metrics::HistogramBucketIndex(1e-300), 1u);
  // Lower bounds invert the index mapping.
  for (size_t i = 1; i + 1 < metrics::kHistogramBuckets; ++i) {
    EXPECT_EQ(metrics::HistogramBucketIndex(
                  metrics::HistogramBucketLowerBound(i)),
              i);
  }
}

TEST_F(MetricsTest, ResetClearsValuesKeepsHandles) {
  metrics::Counter& c = metrics::GetCounter("test.reset");
  c.Add(7);
  metrics::Reset();
  EXPECT_EQ(c.Value(), 0);
  c.Add(2);
  EXPECT_EQ(c.Value(), 2);
}

TEST_F(MetricsTest, DisabledUpdatesAreNoOps) {
  metrics::Counter& c = metrics::GetCounter("test.disabled");
  metrics::Gauge& g = metrics::GetGauge("test.disabled_gauge");
  metrics::Histogram& h = metrics::GetHistogram("test.disabled_hist");
  metrics::Disable();
  c.Add(100);
  g.Set(9.0);
  h.Observe(1.0);
  AHNTP_METRIC_COUNT("test.disabled_macro", 5);
  metrics::Enable();
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0);
  metrics::Snapshot snapshot = metrics::Collect();
  EXPECT_EQ(snapshot.CounterValue("test.disabled_macro", 0), 0);
}

// The determinism contract: integer counters and histogram counts fold to
// bit-identical values at any worker count, because folding is an
// order-independent sum over per-thread shards.
TEST_F(MetricsTest, ShardFoldingIsThreadCountInvariant) {
  const int saved_threads = NumThreads();
  constexpr size_t kItems = 10000;
  std::vector<int64_t> counts, weighted, hist_counts;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    metrics::Reset();
    metrics::Counter& calls = metrics::GetCounter("test.fold.calls");
    metrics::Counter& weight = metrics::GetCounter("test.fold.weight");
    metrics::Histogram& h = metrics::GetHistogram("test.fold.hist");
    ParallelFor(0, kItems, 16, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        calls.Increment();
        weight.Add(static_cast<int64_t>(i));
        h.Observe(static_cast<double>(i % 7) + 0.5);
      }
    });
    counts.push_back(calls.Value());
    weighted.push_back(weight.Value());
    hist_counts.push_back(h.Count());
  }
  SetNumThreads(saved_threads);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], static_cast<int64_t>(kItems));
    EXPECT_EQ(weighted[i], static_cast<int64_t>(kItems * (kItems - 1) / 2));
    EXPECT_EQ(hist_counts[i], static_cast<int64_t>(kItems));
  }
}

TEST_F(MetricsTest, CollectIsSortedAndComplete) {
  metrics::GetCounter("test.sort.b").Add(2);
  metrics::GetCounter("test.sort.a").Add(1);
  metrics::Snapshot snapshot = metrics::Collect();
  EXPECT_EQ(snapshot.CounterValue("test.sort.a"), 1);
  EXPECT_EQ(snapshot.CounterValue("test.sort.b"), 2);
  EXPECT_EQ(snapshot.CounterValue("test.sort.missing"), -1);
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST_F(MetricsTest, SnapshotJsonRoundTripsThroughFile) {
  metrics::GetCounter("test.json.counter").Add(11);
  metrics::GetGauge("test.json.gauge").Set(0.5);
  metrics::GetHistogram("test.json.hist").Observe(3.0);
  const std::string path = "/tmp/ahntp_observability_test_metrics.json";
  ASSERT_TRUE(metrics::WriteSnapshotJson(path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, metrics::Collect().ToJson());
  EXPECT_NE(contents.find("\"test.json.counter\": 11"), std::string::npos);
  EXPECT_NE(contents.find("\"test.json.gauge\": 0.5"), std::string::npos);
  EXPECT_NE(contents.find("\"test.json.hist\""), std::string::npos);
  std::remove(path.c_str());
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Disable();
    trace::Enable();
  }
  void TearDown() override { trace::Disable(); }
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  trace::Disable();
  {
    trace::TraceSpan span("should.not.appear");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(trace::CurrentSpanId(), 0u);
  }
  trace::Enable();
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST_F(TraceTest, SpansNestOnOneThread) {
  uint64_t outer_id = 0, inner_id = 0;
  {
    trace::TraceSpan outer("outer");
    outer_id = outer.id();
    EXPECT_EQ(trace::CurrentSpanId(), outer_id);
    {
      trace::TraceSpan inner("inner");
      inner_id = inner.id();
      EXPECT_EQ(trace::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(trace::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(trace::CurrentSpanId(), 0u);
  std::vector<trace::SpanEvent> events = trace::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].parent_id, outer_id);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[0].duration_ns, 0);
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
}

TEST_F(TraceTest, SpansInParallelForParentUnderSubmitter) {
  const int saved_threads = NumThreads();
  SetNumThreads(4);
  uint64_t outer_id = 0;
  {
    trace::TraceSpan outer("pool.outer");
    outer_id = outer.id();
    ParallelFor(0, 16, 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        trace::TraceSpan task("pool.task");
      }
    });
  }
  SetNumThreads(saved_threads);
  std::vector<trace::SpanEvent> events = trace::Snapshot();
  size_t tasks = 0;
  for (const trace::SpanEvent& e : events) {
    if (e.name == "pool.task") {
      ++tasks;
      EXPECT_EQ(e.parent_id, outer_id) << "task span lost its parent";
    }
  }
  EXPECT_EQ(tasks, 16u);
}

TEST_F(TraceTest, RingBufferOverwritesOldestAndCountsDrops) {
  trace::Enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    trace::TraceSpan span(i < 2 ? "old" : "new");
  }
  uint64_t dropped = 0;
  std::vector<trace::SpanEvent> events = trace::Snapshot(&dropped);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped, 2u);
  for (const trace::SpanEvent& e : events) EXPECT_EQ(e.name, "new");
  // Oldest first, ids ascending.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].id, events[i].id);
  }
}

TEST_F(TraceTest, ChromeJsonHasTraceEventSchema) {
  {
    trace::TraceSpan a("alpha");
    trace::TraceSpan b("beta \"quoted\"");
  }
  std::string json = trace::ToChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"ahntp\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, CsvExportHasHeaderAndOneRowPerSpan) {
  {
    trace::TraceSpan a("row.a");
  }
  {
    trace::TraceSpan b("row.b");
  }
  std::string csv = trace::ToCsv();
  EXPECT_EQ(csv.find("name,id,parent_id,thread,start_us,duration_us\n"), 0u);
  EXPECT_NE(csv.find("\nrow.a,"), std::string::npos);
  EXPECT_NE(csv.find("\nrow.b,"), std::string::npos);
  size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);  // header + 2 rows
}

TEST_F(TraceTest, WriteChromeJsonRoundTripsThroughFile) {
  {
    trace::TraceSpan span("exported");
  }
  const std::string path = "/tmp/ahntp_observability_test_trace.json";
  ASSERT_TRUE(trace::WriteChromeJson(path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, trace::ToChromeJson());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ahntp
