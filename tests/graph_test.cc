#include "graph/digraph.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/pagerank.h"

namespace ahntp::graph {
namespace {

Digraph MakeGraph(size_t n, std::vector<Edge> edges) {
  auto g = Digraph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.value();
}

TEST(DigraphTest, BasicConstruction) {
  Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(DigraphTest, DropsDuplicatesAndSelfLoops) {
  Digraph g = MakeGraph(3, {{0, 1}, {0, 1}, {1, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DigraphTest, RejectsOutOfRange) {
  auto g = Digraph::FromEdges(2, {{0, 5}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(DigraphTest, AdjacencyMatchesEdges) {
  Digraph g = MakeGraph(3, {{0, 1}, {2, 1}});
  const tensor::CsrMatrix& a = g.Adjacency();
  EXPECT_EQ(a.At(0, 1), 1.0f);
  EXPECT_EQ(a.At(2, 1), 1.0f);
  EXPECT_EQ(a.At(1, 0), 0.0f);
  EXPECT_EQ(a.nnz(), 2u);
}

TEST(DigraphTest, NeighborhoodBallBfsOrder) {
  // 0 -> 1 -> 2 -> 3, plus 4 -> 0.
  Digraph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {4, 0}});
  std::vector<int> ball1 = g.NeighborhoodBall(0, 1);
  std::vector<int> sorted1 = ball1;
  std::sort(sorted1.begin(), sorted1.end());
  EXPECT_EQ(sorted1, (std::vector<int>{1, 4}));  // both directions
  std::vector<int> ball2 = g.NeighborhoodBall(0, 2);
  EXPECT_EQ(ball2.size(), 3u);  // 1, 4, then 2
  EXPECT_EQ(ball2.back(), 2);   // 2-hop node comes last (BFS order)
  std::vector<int> ball0 = g.NeighborhoodBall(0, 0);
  EXPECT_TRUE(ball0.empty());
}

TEST(DigraphTest, Reciprocity) {
  Digraph none = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(none.Reciprocity(), 0.0);
  Digraph half = MakeGraph(3, {{0, 1}, {1, 0}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(half.Reciprocity(), 0.5);
}

TEST(DigraphTest, UndirectedNeighborsDeduplicated) {
  Digraph g = MakeGraph(3, {{0, 1}, {1, 0}, {0, 2}});
  EXPECT_EQ(g.UndirectedNeighbors(0), (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

TEST(PageRankTest, SumsToOne) {
  Digraph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {0, 4}});
  std::vector<double> s = PageRank(g.Adjacency());
  double total = 0.0;
  for (double v : s) total += v;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  Digraph cycle = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::vector<double> s = PageRank(cycle.Adjacency());
  for (double v : s) EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST(PageRankTest, HubReceivesMostMass) {
  // Everyone points at node 0.
  Digraph g = MakeGraph(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  std::vector<double> s = PageRank(g.Adjacency());
  for (size_t i = 1; i < 5; ++i) EXPECT_GT(s[0], s[i]);
}

TEST(PageRankTest, DanglingNodesHandled) {
  // Node 1 has no out-edges: its mass must redistribute, not vanish.
  Digraph g = MakeGraph(3, {{0, 1}, {2, 1}});
  std::vector<double> s = PageRank(g.Adjacency());
  double total = s[0] + s[1] + s[2];
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(s[1], s[0]);
}

TEST(PageRankTest, DampingChangesDistribution) {
  Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 1}});
  PageRankOptions low;
  low.damping = 0.5;
  PageRankOptions high;
  high.damping = 0.95;
  std::vector<double> s_low = PageRank(g.Adjacency(), low);
  std::vector<double> s_high = PageRank(g.Adjacency(), high);
  // Higher damping concentrates mass more on the cycle {1,2,3}.
  EXPECT_LT(s_high[0], s_low[0]);
}

// ---------------------------------------------------------------------------
// Motif-based PageRank (Eqs. 3-5)
// ---------------------------------------------------------------------------

TEST(MotifPageRankTest, AlphaOneEqualsPlainPageRank) {
  Digraph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 3}});
  MotifPageRankOptions options;
  options.alpha = 1.0;
  MotifPageRankResult mpr = MotifPageRank(g.Adjacency(), options);
  std::vector<double> pr = PageRank(g.Adjacency().Binarized());
  ASSERT_EQ(mpr.scores.size(), pr.size());
  for (size_t i = 0; i < pr.size(); ++i) {
    EXPECT_NEAR(mpr.scores[i], pr[i], 1e-6);
  }
}

TEST(MotifPageRankTest, ScoresSumToOne) {
  Digraph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 0}, {0, 2}, {3, 0},
                            {4, 5}, {5, 4}, {2, 4}});
  MotifPageRankOptions options;
  options.alpha = 0.8;
  options.motif = Motif::kM1;
  MotifPageRankResult result = MotifPageRank(g.Adjacency(), options);
  double total = 0.0;
  for (double v : result.scores) total += v;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(MotifPageRankTest, CombinedWeightsBlendCorrectly) {
  // Graph with an M1 cycle 0->1->2->0.
  Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {3, 0}});
  MotifPageRankOptions options;
  options.alpha = 0.6;
  options.motif = Motif::kM1;
  MotifPageRankResult result = MotifPageRank(g.Adjacency(), options);
  // Pairwise edge (3,0) has no motif support: weight = alpha * 1.
  EXPECT_NEAR(result.combined_weights.At(3, 0), 0.6f, 1e-5f);
  // Edge (0,1) is in one M1 instance: its motif adjacency entry is 1.
  EXPECT_NEAR(result.combined_weights.At(0, 1), 0.6f + 0.4f * 1.0f, 1e-5f);
}

TEST(MotifPageRankTest, MotifParticipantsOutrankPeripherals) {
  // Triangle 0-1-2 (cyclic) plus pendant chain 3 -> 0, 4 -> 3.
  Digraph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {4, 3}});
  MotifPageRankOptions options;
  options.alpha = 0.2;  // emphasize the motif term
  options.motif = Motif::kM1;
  MotifPageRankResult result = MotifPageRank(g.Adjacency(), options);
  EXPECT_GT(result.scores[0], result.scores[4]);
  EXPECT_GT(result.scores[1], result.scores[4]);
}

}  // namespace
}  // namespace ahntp::graph
