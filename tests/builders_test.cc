#include "hypergraph/builders.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ahntp::hypergraph {
namespace {

graph::Digraph MakeGraph(size_t n, std::vector<graph::Edge> edges) {
  auto g = graph::Digraph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.value();
}

// ---------------------------------------------------------------------------
// High social influence hypergroup (Eq. 6)
// ---------------------------------------------------------------------------

TEST(SocialInfluenceBuilderTest, SelectsTopKByInfluence) {
  // User 0 connects to 1, 2, 3; influence favors 3 then 1.
  graph::Digraph g = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<double> influence = {0.1, 0.3, 0.1, 0.5};
  Hypergraph hg = BuildSocialInfluenceHypergroup(g, influence, /*top_k=*/2);
  EXPECT_EQ(hg.num_edges(), 4u);  // one hyperedge per user
  // User 0's hyperedge: {0} + top-2 neighbours {3, 1} -> sorted {0,1,3}.
  EXPECT_EQ(hg.EdgeVertices(0), (std::vector<int>{0, 1, 3}));
}

TEST(SocialInfluenceBuilderTest, IsolatedUsersGetSingletonEdges) {
  graph::Digraph g = MakeGraph(3, {{0, 1}});
  std::vector<double> influence = {0.3, 0.3, 0.4};
  Hypergraph hg = BuildSocialInfluenceHypergroup(g, influence, 2);
  EXPECT_EQ(hg.EdgeVertices(2), (std::vector<int>{2}));
}

TEST(SocialInfluenceBuilderTest, UsesBothEdgeDirections) {
  graph::Digraph g = MakeGraph(3, {{1, 0}, {0, 2}});
  std::vector<double> influence = {0.2, 0.5, 0.3};
  Hypergraph hg = BuildSocialInfluenceHypergroup(g, influence, 5);
  // User 0's neighbourhood includes in-neighbour 1 and out-neighbour 2.
  EXPECT_EQ(hg.EdgeVertices(0), (std::vector<int>{0, 1, 2}));
}

TEST(SocialInfluenceBuilderTest, MprAndPlainPagerankVariantsRun) {
  graph::Digraph g =
      MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {0, 2}, {3, 4}, {4, 3}});
  SocialInfluenceOptions with_mpr;
  with_mpr.top_k = 2;
  with_mpr.use_motif_pagerank = true;
  SocialInfluenceOptions without_mpr = with_mpr;
  without_mpr.use_motif_pagerank = false;
  Hypergraph a = BuildSocialInfluenceHypergroup(g, with_mpr);
  Hypergraph b = BuildSocialInfluenceHypergroup(g, without_mpr);
  EXPECT_EQ(a.num_edges(), 5u);
  EXPECT_EQ(b.num_edges(), 5u);
  EXPECT_TRUE(a.Validate().ok());
  EXPECT_TRUE(b.Validate().ok());
}

// ---------------------------------------------------------------------------
// Attribute hypergroup (Eq. 7)
// ---------------------------------------------------------------------------

TEST(AttributeBuilderTest, GroupsUsersByValue) {
  // attribute 0: users {0,2} share value 1, {1,3} share value 7.
  std::vector<std::vector<int>> attrs = {{1, 7, 1, 7}};
  Hypergraph hg = BuildAttributeHypergroup(4, attrs);
  ASSERT_EQ(hg.num_edges(), 2u);
  EXPECT_EQ(hg.EdgeVertices(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(hg.EdgeVertices(1), (std::vector<int>{1, 3}));
}

TEST(AttributeBuilderTest, DropsSmallGroupsAndMissingValues) {
  std::vector<std::vector<int>> attrs = {{1, 2, 1, -1}};
  // Value 2 has one member (dropped at min_size=2); -1 is missing.
  Hypergraph hg = BuildAttributeHypergroup(4, attrs, /*min_size=*/2);
  ASSERT_EQ(hg.num_edges(), 1u);
  EXPECT_EQ(hg.EdgeVertices(0), (std::vector<int>{0, 2}));
}

TEST(AttributeBuilderTest, MultipleAttributeColumns) {
  std::vector<std::vector<int>> attrs = {{0, 0, 1, 1}, {5, 6, 5, 6}};
  Hypergraph hg = BuildAttributeHypergroup(4, attrs);
  EXPECT_EQ(hg.num_edges(), 4u);  // 2 groups per column
}

// ---------------------------------------------------------------------------
// Pairwise hypergroup (Eq. 8)
// ---------------------------------------------------------------------------

TEST(PairwiseBuilderTest, TwoUniformEdges) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 0}, {2, 3}});
  Hypergraph hg = BuildPairwiseHypergroup(g);
  // (0,1) and (1,0) collapse into one undirected pair.
  ASSERT_EQ(hg.num_edges(), 2u);
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    EXPECT_EQ(hg.EdgeDegree(e), 2u);
  }
}

// ---------------------------------------------------------------------------
// Multi-hop hypergroup (Eq. 9)
// ---------------------------------------------------------------------------

TEST(MultiHopBuilderTest, OneHopBallsIncludeSelf) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  MultiHopOptions options;
  options.num_hops = 1;
  Hypergraph hg = BuildMultiHopHypergroup(g, options);
  ASSERT_EQ(hg.num_edges(), 4u);
  EXPECT_EQ(hg.EdgeVertices(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(hg.EdgeVertices(1), (std::vector<int>{0, 1, 2}));
}

TEST(MultiHopBuilderTest, TwoHopsConcatenatesLevels) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  MultiHopOptions options;
  options.num_hops = 2;
  Hypergraph hg = BuildMultiHopHypergroup(g, options);
  ASSERT_EQ(hg.num_edges(), 8u);  // 4 users x 2 hop levels
  // Hop-2 ball of user 0 reaches {0,1,2}.
  EXPECT_EQ(hg.EdgeVertices(4), (std::vector<int>{0, 1, 2}));
}

TEST(MultiHopBuilderTest, EdgeSizeCapKeepsNearest) {
  // Star: 0 at the center of 9 spokes, plus chain 1 -> 10.
  std::vector<graph::Edge> edges;
  for (int v = 1; v <= 9; ++v) edges.push_back({0, v});
  edges.push_back({1, 10});
  graph::Digraph g = MakeGraph(11, edges);
  MultiHopOptions options;
  options.num_hops = 2;
  options.max_edge_size = 5;
  Hypergraph hg = BuildMultiHopHypergroup(g, options);
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    EXPECT_LE(hg.EdgeDegree(e), 5u);
  }
  // User 0's capped ball keeps 1-hop neighbours before the 2-hop node 10.
  const std::vector<int>& ball = hg.EdgeVertices(11);  // hop-2 edge of user 0
  EXPECT_EQ(std::count(ball.begin(), ball.end(), 10), 0);
}

TEST(MultiHopBuilderTest, IsolatedUserStillCovered) {
  graph::Digraph g = MakeGraph(3, {{0, 1}});
  MultiHopOptions options;
  Hypergraph hg = BuildMultiHopHypergroup(g, options);
  EXPECT_EQ(hg.EdgeVertices(2), (std::vector<int>{2}));
}

}  // namespace
}  // namespace ahntp::hypergraph
