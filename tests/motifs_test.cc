#include "graph/motifs.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/digraph.h"

namespace ahntp::graph {
namespace {

Digraph MakeGraph(size_t n, std::vector<Edge> edges) {
  auto g = Digraph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.value();
}

Digraph RandomGraph(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && rng.Bernoulli(density)) {
        edges.push_back({static_cast<int>(i), static_cast<int>(j)});
      }
    }
  }
  return MakeGraph(n, std::move(edges));
}

TEST(SplitDirectionsTest, SeparatesBidirectionalEdges) {
  Digraph g = MakeGraph(3, {{0, 1}, {1, 0}, {1, 2}});
  DirectionalSplit split = SplitDirections(g.Adjacency());
  EXPECT_EQ(split.bidirectional.At(0, 1), 1.0f);
  EXPECT_EQ(split.bidirectional.At(1, 0), 1.0f);
  EXPECT_EQ(split.bidirectional.At(1, 2), 0.0f);
  EXPECT_EQ(split.unidirectional.At(1, 2), 1.0f);
  EXPECT_EQ(split.unidirectional.At(0, 1), 0.0f);
  EXPECT_EQ(split.unidirectional.nnz(), 1u);
}

TEST(SplitDirectionsTest, DisjointAndComplete) {
  Digraph g = RandomGraph(12, 0.3, 99);
  DirectionalSplit split = SplitDirections(g.Adjacency());
  // BC + UC must equal the binary adjacency, with disjoint patterns.
  tensor::CsrMatrix sum =
      tensor::SparseAdd(split.bidirectional, split.unidirectional);
  EXPECT_TRUE(sum.AllClose(g.Adjacency().Binarized()));
  tensor::CsrMatrix overlap =
      tensor::SparseHadamard(split.bidirectional, split.unidirectional);
  EXPECT_EQ(overlap.Pruned().nnz(), 0u);
}

// ---------------------------------------------------------------------------
// Hand-constructed single-instance graphs, one per motif (Fig. 4).
// ---------------------------------------------------------------------------

struct MotifExample {
  Motif motif;
  std::vector<Edge> edges;
};

class SingleMotifTest : public ::testing::TestWithParam<MotifExample> {};

TEST_P(SingleMotifTest, AdjacencyCountsExactlyOneInstance) {
  const MotifExample& example = GetParam();
  Digraph g = MakeGraph(3, example.edges);
  tensor::CsrMatrix a = MotifAdjacency(g.Adjacency(), example.motif);
  EXPECT_EQ(CountMotifInstances(a), 1);
  // All three ordered pairs participate exactly once.
  EXPECT_EQ(a.At(0, 1), 1.0f);
  EXPECT_EQ(a.At(1, 2), 1.0f);
  EXPECT_EQ(a.At(2, 0), 1.0f);
  // The same graph contains no instance of the other motifs.
  for (int k = 1; k <= 7; ++k) {
    Motif other = static_cast<Motif>(k);
    if (other == example.motif) continue;
    EXPECT_EQ(CountMotifInstances(MotifAdjacency(g.Adjacency(), other)), 0)
        << "unexpected instance of M" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMotifs, SingleMotifTest,
    ::testing::Values(
        // M1: cycle of one-way edges.
        MotifExample{Motif::kM1, {{0, 1}, {1, 2}, {2, 0}}},
        // M2: one reciprocated pair (0,1); one-way edges 1->2, 2->0.
        MotifExample{Motif::kM2, {{0, 1}, {1, 0}, {1, 2}, {2, 0}}},
        // M3: reciprocated (0,1) and (1,2); one-way 0->2.
        MotifExample{Motif::kM3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}}},
        // M4: all three pairs reciprocated.
        MotifExample{Motif::kM4,
                     {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}}},
        // M5: feed-forward 0->1, 0->2, 1->2.
        MotifExample{Motif::kM5, {{0, 1}, {0, 2}, {1, 2}}},
        // M6: 2 points at both ends of reciprocated (0,1).
        MotifExample{Motif::kM6, {{2, 0}, {2, 1}, {0, 1}, {1, 0}}},
        // M7: both ends of reciprocated (0,1) point at 2.
        MotifExample{Motif::kM7, {{0, 2}, {1, 2}, {0, 1}, {1, 0}}}),
    [](const ::testing::TestParamInfo<MotifExample>& info) {
      // Built via append (not "M" + rvalue) to dodge a GCC 12 -Wrestrict
      // false positive in the inlined libstdc++ operator+.
      std::string name = "M";
      name += std::to_string(static_cast<int>(info.param.motif));
      return name;
    });

// ---------------------------------------------------------------------------
// The paper's Fig. 6 example: A^{M6}_{15} = 2 via instances {1,6,5}, {1,5,4}.
// ---------------------------------------------------------------------------

TEST(MotifAdjacencyTest, PaperFigure6Example) {
  // Fig. 6 (1-indexed in the paper; 0-indexed here: subtract 1). The two
  // claimed M6 instances are {1,6,5} and {1,5,4}: user 1 points one-way at
  // both ends of the reciprocated pairs (5,6) and (4,5).
  std::vector<Edge> edges = {
      {4, 3}, {3, 4},  // 5 <-> 4
      {4, 5}, {5, 4},  // 5 <-> 6
      {0, 4},          // 1 -> 5
      {0, 5},          // 1 -> 6
      {0, 3},          // 1 -> 4
      {1, 0},          // 2 -> 1
      {2, 1},          // 3 -> 2
  };
  Digraph g = MakeGraph(6, edges);
  tensor::CsrMatrix m6 = MotifAdjacency(g.Adjacency(), Motif::kM6);
  // Users 1 and 5 (0-indexed 0 and 4) co-occur in M6 twice: {1,6,5}, {1,5,4}.
  EXPECT_EQ(m6.At(0, 4), 2.0f);
  EXPECT_EQ(m6.At(4, 0), 2.0f);
}

// ---------------------------------------------------------------------------
// Property test: Table II algebra == brute-force triple enumeration.
// ---------------------------------------------------------------------------

struct AlgebraCase {
  Motif motif;
  uint64_t seed;
};

class MotifAlgebraPropertyTest
    : public ::testing::TestWithParam<AlgebraCase> {};

TEST_P(MotifAlgebraPropertyTest, MatchesEnumeration) {
  const AlgebraCase& param = GetParam();
  Digraph g = RandomGraph(14, 0.25, param.seed);
  tensor::CsrMatrix fast = MotifAdjacency(g.Adjacency(), param.motif);
  tensor::CsrMatrix slow = MotifAdjacencyByEnumeration(g, param.motif);
  EXPECT_TRUE(fast.AllClose(slow))
      << "M" << static_cast<int>(param.motif) << " seed " << param.seed
      << "\nfast: " << fast.DebugString(30)
      << "\nslow: " << slow.DebugString(30);
}

std::vector<AlgebraCase> AllAlgebraCases() {
  std::vector<AlgebraCase> cases;
  for (int m = 1; m <= 7; ++m) {
    for (uint64_t seed : {11ull, 22ull, 33ull}) {
      cases.push_back({static_cast<Motif>(m), seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMotifsAllSeeds, MotifAlgebraPropertyTest,
    ::testing::ValuesIn(AllAlgebraCases()),
    [](const ::testing::TestParamInfo<AlgebraCase>& info) {
      std::string name = "M";
      name += std::to_string(static_cast<int>(info.param.motif));
      name += "_seed";
      name += std::to_string(info.param.seed);
      return name;
    });

TEST(MotifAdjacencyTest, SymmetricForAllMotifs) {
  Digraph g = RandomGraph(15, 0.3, 77);
  for (const tensor::CsrMatrix& a : AllMotifAdjacencies(g.Adjacency())) {
    EXPECT_TRUE(a.AllClose(a.Transposed()));
  }
}

TEST(MotifAdjacencyTest, EmptyGraphHasNoMotifs) {
  Digraph g = MakeGraph(5, {});
  for (int m = 1; m <= 7; ++m) {
    EXPECT_EQ(
        MotifAdjacency(g.Adjacency(), static_cast<Motif>(m)).Pruned().nnz(),
        0u);
  }
}

}  // namespace
}  // namespace ahntp::graph
