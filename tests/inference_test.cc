// Tests for the tape-free compiled inference path: bitwise parity with the
// autograd tape across the whole model zoo and thread counts, workspace
// arena reuse, cache invalidation on weight changes, and the recursive
// training-flag contract.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"
#include "nn/infer.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "serve/backend.h"
#include "tensor/quant.h"
#include "tensor/workspace.h"

namespace ahntp {
namespace {

using models::TrustPredictor;

// ---------------------------------------------------------------------------
// Fixture: generated dataset + inputs, same shape as models_test.
// ---------------------------------------------------------------------------

class InferenceFixture {
 public:
  InferenceFixture() : rng_(123) {
    data::GeneratorConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.num_communities = 3;
    config.avg_trust_out_degree = 5.0;
    config.avg_purchases_per_user = 6.0;
    config.seed = 7;
    dataset_ = data::SocialNetworkGenerator(config).Generate();
    split_ = data::MakeSplit(dataset_);
    graph_ = dataset_.GraphFromEdges(split_.train_positive).value();
    features_ = data::BuildFeatureMatrix(dataset_);

    hypergraph::Hypergraph attr = hypergraph::BuildAttributeHypergroup(
        dataset_.num_users, dataset_.attributes);
    hypergraph::Hypergraph pairwise =
        hypergraph::BuildPairwiseHypergroup(graph_);
    hypergraph_ = hypergraph::Hypergraph::Concat(attr, pairwise);

    inputs_.features = &features_;
    inputs_.graph = &graph_;
    inputs_.dataset = &dataset_;
    inputs_.hypergraph = &hypergraph_;
    inputs_.hidden_dims = {16, 8};
    // Non-zero dropout so parity also proves eval mode skips it.
    inputs_.dropout = 0.3f;
    inputs_.rng = &rng_;
  }

  models::ModelInputs inputs() { return inputs_; }

  std::unique_ptr<TrustPredictor> MakePredictor(const std::string& name,
                                                uint64_t seed) {
    Rng rng(seed);
    models::ModelInputs inputs = inputs_;
    inputs.rng = &rng;
    auto created = core::CreatePredictor(name, inputs, core::AhntpConfig{});
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).value();
  }

  std::vector<data::TrustPair> Queries(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back({static_cast<int>(i % dataset_.num_users),
                       static_cast<int>((3 * i + 1) % dataset_.num_users),
                       1.0f});
    }
    return pairs;
  }

 private:
  Rng rng_;
  data::SocialDataset dataset_;
  data::TrustSplit split_;
  graph::Digraph graph_{0};
  tensor::Matrix features_;
  hypergraph::Hypergraph hypergraph_{0};
  models::ModelInputs inputs_;
};

InferenceFixture& Fixture() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

/// Tape-path reference probabilities: eval-mode Forward, no plan involved.
std::vector<float> TapeProbabilities(TrustPredictor* predictor,
                                     const std::vector<data::TrustPair>& pairs) {
  bool was_training = predictor->training();
  predictor->SetTraining(false);
  TrustPredictor::PairOutput out = predictor->Forward(pairs);
  predictor->SetTraining(was_training);
  std::vector<float> probs(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    probs[i] = out.probability.value().At(i, 0);
  }
  return probs;
}

// ---------------------------------------------------------------------------
// Compiled-vs-tape parity across the entire model zoo and thread counts.
// ---------------------------------------------------------------------------

class CompiledParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CompiledParityTest, BitIdenticalToTapeAtEveryThreadCount) {
  auto predictor = Fixture().MakePredictor(GetParam(), 42);
  std::vector<data::TrustPair> pairs = Fixture().Queries(17);
  std::vector<float> reference = TapeProbabilities(predictor.get(), pairs);

  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    // Invalidate so the all-user encode itself reruns at this thread count.
    predictor->InvalidateCaches();
    std::vector<float> compiled = predictor->PredictProbabilities(pairs);
    ASSERT_EQ(compiled.size(), reference.size());
    for (size_t i = 0; i < compiled.size(); ++i) {
      EXPECT_EQ(compiled[i], reference[i])
          << GetParam() << " pair " << i << " threads=" << threads;
    }
  }
  SetNumThreads(0);
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, CompiledParityTest,
                         ::testing::ValuesIn(core::AvailableModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Layer-level parity: InferLinear / InferMlp / InferLayerNorm.
// ---------------------------------------------------------------------------

tensor::Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  tensor::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform(-2.0f, 2.0f);
  }
  return m;
}

TEST(InferLayersTest, LinearMatchesTapeBitwise) {
  Rng rng(1);
  nn::Linear layer(6, 4, &rng);
  tensor::Matrix x = RandomMatrix(9, 6, &rng);
  tensor::Matrix tape = layer.Forward(autograd::Constant(x)).value();
  tensor::Workspace ws;
  tensor::Matrix& compiled = nn::InferLinear(layer, x, &ws);
  ASSERT_EQ(compiled.rows(), tape.rows());
  ASSERT_EQ(compiled.cols(), tape.cols());
  for (size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(compiled.data()[i], tape.data()[i]) << "entry " << i;
  }
}

TEST(InferLayersTest, MlpMatchesEvalTapeBitwise) {
  Rng rng(2);
  nn::Mlp mlp({6, 5, 3}, &rng, nn::Activation::kRelu, nn::Activation::kNone,
              /*dropout=*/0.5f);
  mlp.SetTraining(false);
  tensor::Matrix x = RandomMatrix(7, 6, &rng);
  tensor::Matrix tape = mlp.Forward(autograd::Constant(x)).value();
  tensor::Workspace ws;
  tensor::Matrix& compiled = nn::InferMlp(mlp, x, &ws);
  ASSERT_EQ(compiled.rows(), tape.rows());
  ASSERT_EQ(compiled.cols(), tape.cols());
  for (size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(compiled.data()[i], tape.data()[i]) << "entry " << i;
  }
}

TEST(InferLayersTest, LayerNormMatchesTapeBitwise) {
  Rng rng(3);
  nn::LayerNorm norm(5);
  // Perturb gain/bias away from the identity so the test is non-trivial.
  // Variable handles share their node, so mutating the copies edits norm.
  autograd::Variable gain = norm.gain();
  autograd::Variable bias = norm.bias();
  for (size_t i = 0; i < 5; ++i) {
    gain.mutable_value().At(0, i) = rng.Uniform(0.5f, 1.5f);
    bias.mutable_value().At(0, i) = rng.Uniform(-0.5f, 0.5f);
  }
  tensor::Matrix x = RandomMatrix(8, 5, &rng);
  tensor::Matrix tape = norm.Forward(autograd::Constant(x)).value();
  tensor::Workspace ws;
  tensor::Matrix& compiled = nn::InferLayerNorm(norm, x, &ws);
  ASSERT_EQ(compiled.rows(), tape.rows());
  ASSERT_EQ(compiled.cols(), tape.cols());
  for (size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(compiled.data()[i], tape.data()[i]) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Workspace arena semantics.
// ---------------------------------------------------------------------------

TEST(WorkspaceTest, ResetReusesSlotsInOrder) {
  tensor::Workspace ws;
  tensor::Matrix* a = ws.Acquire(4, 4);
  tensor::Matrix* b = ws.Acquire(2, 8);
  ws.Reset();
  EXPECT_EQ(ws.Acquire(4, 4), a);
  EXPECT_EQ(ws.Acquire(2, 8), b);
  EXPECT_EQ(ws.num_slots(), 2u);
}

TEST(WorkspaceTest, SteadyStateLoopIsAllocationFree) {
  tensor::Workspace ws;
  // Warm-up pass establishes the slots.
  ws.Acquire(10, 3);
  ws.Acquire(5, 5);
  ws.Reset();
  size_t warmed = ws.allocations();
  for (int i = 0; i < 100; ++i) {
    ws.Acquire(10, 3);
    ws.Acquire(5, 5);
    ws.Reset();
  }
  EXPECT_EQ(ws.allocations(), warmed);
  // A larger request grows a buffer: allocations must tick up.
  ws.Acquire(20, 20);
  EXPECT_GT(ws.allocations(), warmed);
}

TEST(WorkspaceTest, AcquireWithinCapacityDoesNotCount) {
  tensor::Workspace ws;
  ws.Acquire(8, 8);
  ws.Reset();
  size_t warmed = ws.allocations();
  // Smaller shape fits in the existing 64-float buffer.
  ws.Acquire(4, 4);
  EXPECT_EQ(ws.allocations(), warmed);
}

TEST(InferencePlanTest, ScoringLoopIsAllocationFreeOnceWarm) {
  auto predictor = Fixture().MakePredictor("AHNTP", 11);
  std::vector<data::TrustPair> pairs = Fixture().Queries(12);
  predictor->WarmInferencePlan();
  (void)predictor->PredictProbabilities(pairs);  // warms the scoring slots
  const models::InferencePlan* plan = predictor->inference_plan();
  ASSERT_NE(plan, nullptr);
  size_t warmed = plan->workspace().allocations();
  for (int i = 0; i < 20; ++i) {
    (void)predictor->PredictProbabilities(pairs);
  }
  EXPECT_EQ(plan->workspace().allocations(), warmed);
}

// ---------------------------------------------------------------------------
// Cache invalidation: weights must never go stale.
// ---------------------------------------------------------------------------

TEST(InferencePlanTest, TrainingForwardInvalidatesThePlan) {
  auto predictor = Fixture().MakePredictor("SGC", 21);
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);
  (void)predictor->PredictProbabilities(pairs);
  ASSERT_NE(predictor->inference_plan(), nullptr);
  EXPECT_TRUE(predictor->inference_plan()->built());

  predictor->SetTraining(true);
  (void)predictor->Forward(pairs);
  EXPECT_FALSE(predictor->inference_plan()->built());
}

TEST(InferencePlanTest, ManualWeightEditTracksTapeAfterInvalidate) {
  auto predictor = Fixture().MakePredictor("SGC", 22);
  std::vector<data::TrustPair> pairs = Fixture().Queries(8);
  (void)predictor->PredictProbabilities(pairs);

  // Mutate a parameter in place, as an optimizer step would.
  std::vector<autograd::Variable> params = predictor->Parameters();
  ASSERT_FALSE(params.empty());
  for (size_t i = 0; i < params[0].value().size(); ++i) {
    params[0].mutable_value().data()[i] *= 1.5f;
  }
  predictor->InvalidateCaches();

  std::vector<float> compiled = predictor->PredictProbabilities(pairs);
  std::vector<float> tape = TapeProbabilities(predictor.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(compiled[i], tape[i]) << "pair " << i;
  }
}

TEST(InferencePlanTest, LoadModuleInvalidatesCachedEmbeddings) {
  auto source = Fixture().MakePredictor("SGC", 31);
  auto target = Fixture().MakePredictor("SGC", 32);
  std::vector<data::TrustPair> pairs = Fixture().Queries(9);

  std::vector<float> source_probs = target->PredictProbabilities(pairs);
  (void)source_probs;  // plan built on the pre-load weights

  std::string path = ::testing::TempDir() + "/inference_plan_load.ckpt";
  ASSERT_TRUE(nn::SaveModule(*source, path).ok());
  ASSERT_TRUE(nn::LoadModule(target.get(), path).ok());
  std::filesystem::remove(path);

  // Post-load predictions must reflect the loaded weights, not the cache.
  std::vector<float> loaded = target->PredictProbabilities(pairs);
  std::vector<float> expected = TapeProbabilities(source.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(loaded[i], expected[i]) << "pair " << i;
  }
}

// ---------------------------------------------------------------------------
// Serving: reload keeps the plan fresh, failures keep the old plan serving.
// ---------------------------------------------------------------------------

serve::ModelBackend::Factory MakeBackendFactory(uint64_t seed) {
  return [seed]() { return Fixture().MakePredictor("AHNTP", seed); };
}

TEST(BackendPlanTest, ReloadServesTheLoadedWeightsThroughThePlan) {
  auto factory = MakeBackendFactory(5);
  serve::ModelBackend backend(factory, factory());
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);

  auto other = Fixture().MakePredictor("AHNTP", 99);
  std::string path = ::testing::TempDir() + "/inference_reload.ckpt";
  ASSERT_TRUE(nn::SaveModule(*other, path).ok());

  auto before = backend.ScoreBatch(pairs);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(backend.Reload(path).ok());
  std::filesystem::remove(path);

  auto after = backend.ScoreBatch(pairs);
  ASSERT_TRUE(after.ok());
  std::vector<float> expected = TapeProbabilities(other.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*after)[i], expected[i]) << "pair " << i;
  }
}

TEST(BackendPlanTest, FaultedReloadKeepsTheWarmPlanServing) {
  auto factory = MakeBackendFactory(6);
  serve::ModelBackend backend(factory, factory());
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);
  auto before = backend.ScoreBatch(pairs);
  ASSERT_TRUE(before.ok());

  auto other = Fixture().MakePredictor("AHNTP", 77);
  std::string path = ::testing::TempDir() + "/inference_reload_fault.ckpt";
  ASSERT_TRUE(nn::SaveModule(*other, path).ok());

  // Injected I/O failure at the reload fault site: the old model (and its
  // warmed plan) must keep serving identical scores.
  ASSERT_TRUE(fault::EnableFromSpec("serve.reload@1").ok());
  EXPECT_FALSE(backend.Reload(path).ok());
  fault::Disable();
  EXPECT_EQ(backend.generation(), 0);

  auto after = backend.ScoreBatch(pairs);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*before)[i], (*after)[i]) << "pair " << i;
  }

  // The fault cleared, the same checkpoint loads and takes effect.
  ASSERT_TRUE(backend.Reload(path).ok());
  std::filesystem::remove(path);
  EXPECT_EQ(backend.generation(), 1);
  auto reloaded = backend.ScoreBatch(pairs);
  ASSERT_TRUE(reloaded.ok());
  std::vector<float> expected = TapeProbabilities(other.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*reloaded)[i], expected[i]) << "pair " << i;
  }
}

// ---------------------------------------------------------------------------
// Training-flag contract: recursive SetTraining and save/restore.
// ---------------------------------------------------------------------------

void ExpectTrainingRecursively(nn::Module* module, bool expected) {
  EXPECT_EQ(module->training(), expected);
  for (nn::Module* sub : module->Submodules()) {
    ExpectTrainingRecursively(sub, expected);
  }
}

class SetTrainingRecursionTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(SetTrainingRecursionTest, FlagReachesEverySubmodule) {
  auto predictor = Fixture().MakePredictor(GetParam(), 55);
  predictor->SetTraining(true);
  ExpectTrainingRecursively(predictor.get(), true);
  predictor->SetTraining(false);
  ExpectTrainingRecursively(predictor.get(), false);
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, SetTrainingRecursionTest,
                         ::testing::ValuesIn(core::AvailableModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(SetTrainingRecursionTest, MlpPropagatesToLayers) {
  Rng rng(4);
  nn::Mlp mlp({4, 3, 2}, &rng);
  mlp.SetTraining(true);
  for (size_t i = 0; i < mlp.num_layers(); ++i) {
    EXPECT_TRUE(mlp.layer(i).training());
  }
  mlp.SetTraining(false);
  for (size_t i = 0; i < mlp.num_layers(); ++i) {
    EXPECT_FALSE(mlp.layer(i).training());
  }
}

TEST(PredictProbabilitiesTest, SavesAndRestoresTrainingFlagRecursively) {
  auto predictor = Fixture().MakePredictor("AHNTP", 66);
  std::vector<data::TrustPair> pairs = Fixture().Queries(5);

  predictor->SetTraining(true);
  (void)predictor->PredictProbabilities(pairs);
  ExpectTrainingRecursively(predictor.get(), true);

  predictor->SetTraining(false);
  (void)predictor->PredictProbabilities(pairs);
  ExpectTrainingRecursively(predictor.get(), false);
}

// ---------------------------------------------------------------------------
// Metrics: plan builds, cache hits/misses, workspace gauge.
// ---------------------------------------------------------------------------

TEST(InferenceMetricsTest, CountsBuildsHitsAndMisses) {
  metrics::Enable();
  metrics::Reset();
  auto predictor = Fixture().MakePredictor("SGC", 71);
  std::vector<data::TrustPair> pairs = Fixture().Queries(4);

  (void)predictor->PredictProbabilities(pairs);  // miss + build
  (void)predictor->PredictProbabilities(pairs);  // hit
  (void)predictor->PredictProbabilities(pairs);  // hit
  predictor->InvalidateCaches();
  (void)predictor->PredictProbabilities(pairs);  // miss + build

  metrics::Snapshot snapshot = metrics::Collect();
  EXPECT_EQ(snapshot.CounterValue("infer.plan_builds"), 2);
  EXPECT_EQ(snapshot.CounterValue("infer.cache_misses"), 2);
  EXPECT_EQ(snapshot.CounterValue("infer.cache_hits"), 2);
  double ws_bytes = -1.0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "infer.workspace_bytes") ws_bytes = gauge.value;
  }
  EXPECT_GT(ws_bytes, 0.0);
  metrics::Disable();
}

// ---------------------------------------------------------------------------
// Int8 quantization: tensor-level edge cases, then plan-level behaviour.
// ---------------------------------------------------------------------------

TEST(QuantizedMatrixTest, AllZeroRowsQuantizeToExactZeros) {
  tensor::Matrix m(3, 9);
  for (size_t c = 0; c < 9; ++c) m.At(1, c) = 0.5f * (c + 1);
  // Rows 0 and 2 stay all-zero: absmax 0 => scale 0 => exact zeros out.
  auto calib = tensor::CalibrateRowAbsmax(m);
  ASSERT_TRUE(calib.ok());
  EXPECT_EQ(calib.value().absmax[0], 0.0f);
  EXPECT_EQ(calib.value().absmax[2], 0.0f);

  tensor::QuantizedMatrix q =
      tensor::QuantizedMatrix::Quantize(m, calib.value());
  EXPECT_EQ(q.scale(0), 0.0f);
  EXPECT_EQ(q.scale(2), 0.0f);
  std::vector<float> row(9, -1.0f);
  q.DequantizeRowInto(0, row.data());
  for (float v : row) EXPECT_EQ(v, 0.0f);
  for (size_t c = 0; c < 9; ++c) EXPECT_EQ(q.RowData(0)[c], 0);
}

TEST(QuantizedMatrixTest, RoundTripErrorBoundedByHalfScale) {
  Rng rng(91);
  tensor::Matrix m = tensor::Matrix::Randn(17, 33, &rng, 0.0f, 3.0f);
  auto calib = tensor::CalibrateRowAbsmax(m);
  ASSERT_TRUE(calib.ok());
  tensor::QuantizedMatrix q =
      tensor::QuantizedMatrix::Quantize(m, calib.value());
  std::vector<float> row(m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    q.DequantizeRowInto(r, row.data());
    // Round-to-nearest within the calibrated range: error <= scale / 2
    // (plus a ulp of slack for the scale multiply itself).
    const float bound = q.scale(r) * 0.5f * (1.0f + 1e-5f);
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::fabs(row[c] - m.At(r, c)), bound)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantizedMatrixTest, SaturatesSymmetricallyAtOutliers) {
  // Calibration from a narrower sweep than the live values: everything
  // beyond absmax must clamp to +/-127, never wrap and never hit -128.
  tensor::Matrix m(1, 6);
  m.At(0, 0) = 10.0f;
  m.At(0, 1) = -10.0f;
  m.At(0, 2) = 1.0f;
  m.At(0, 3) = -1.0f;
  m.At(0, 4) = 1.0001f;   // just past the calibrated range
  m.At(0, 5) = -1.0001f;
  tensor::RowCalibration calib;
  calib.absmax = {1.0f};
  ASSERT_TRUE(tensor::ValidateCalibration(calib, 1).ok());
  tensor::QuantizedMatrix q = tensor::QuantizedMatrix::Quantize(m, calib);
  EXPECT_EQ(q.RowData(0)[0], 127);
  EXPECT_EQ(q.RowData(0)[1], -127);
  EXPECT_EQ(q.RowData(0)[2], 127);
  EXPECT_EQ(q.RowData(0)[3], -127);
  EXPECT_EQ(q.RowData(0)[4], 127);
  EXPECT_EQ(q.RowData(0)[5], -127);
}

TEST(QuantizedMatrixTest, ExtremeOutlierDominatesRowScale) {
  // One huge outlier stretches the row's scale; the small entries still
  // round-trip within scale/2 (coarse, but bounded — the contract).
  tensor::Matrix m(1, 4);
  m.At(0, 0) = 1e6f;
  m.At(0, 1) = 0.001f;
  m.At(0, 2) = -0.001f;
  m.At(0, 3) = 3.0f;
  auto calib = tensor::CalibrateRowAbsmax(m);
  ASSERT_TRUE(calib.ok());
  tensor::QuantizedMatrix q =
      tensor::QuantizedMatrix::Quantize(m, calib.value());
  EXPECT_EQ(q.scale(0), 1e6f / 127.0f);
  std::vector<float> row(4);
  q.DequantizeRowInto(0, row.data());
  EXPECT_EQ(row[0], 1e6f / 127.0f * 127.0f);  // outlier itself exact-ish
  for (size_t c = 1; c < 4; ++c) {
    EXPECT_LE(std::fabs(row[c] - m.At(0, c)), q.scale(0) * 0.5f * 1.00001f);
  }
}

TEST(QuantizedMatrixTest, CalibrationRejectsNonFiniteActivations) {
  tensor::Matrix m(2, 3);
  m.At(1, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(tensor::CalibrateRowAbsmax(m).status().code(),
            StatusCode::kInvalidArgument);
  m.At(1, 1) = std::numeric_limits<float>::infinity();
  EXPECT_EQ(tensor::CalibrateRowAbsmax(m).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantizedMatrixTest, ValidateCalibrationRejectsBadStats) {
  tensor::RowCalibration calib;
  calib.absmax = {1.0f, 2.0f};
  EXPECT_TRUE(tensor::ValidateCalibration(calib, 2).ok());
  EXPECT_EQ(tensor::ValidateCalibration(calib, 3).code(),
            StatusCode::kInvalidArgument);
  calib.absmax = {1.0f, -0.5f};
  EXPECT_EQ(tensor::ValidateCalibration(calib, 2).code(),
            StatusCode::kInvalidArgument);
  calib.absmax = {1.0f, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_EQ(tensor::ValidateCalibration(calib, 2).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Int8 plan behaviour: tolerance parity, byte savings, recalibration.
// ---------------------------------------------------------------------------

/// Max |a - b| over two probability vectors.
float MaxAbsDelta(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float delta = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    delta = std::max(delta, std::fabs(a[i] - b[i]));
  }
  return delta;
}

TEST(Int8PlanTest, ToleranceParityAndByteSavings) {
  auto fp32 = Fixture().MakePredictor("AHNTP", 77);
  auto int8 = Fixture().MakePredictor("AHNTP", 77);
  int8->SetInferencePrecision(models::PlanPrecision::kInt8);
  std::vector<data::TrustPair> pairs = Fixture().Queries(24);

  std::vector<float> ref = fp32->PredictProbabilities(pairs);
  std::vector<float> quant = int8->PredictProbabilities(pairs);
  // Probabilities live in [0, 1]; per-row int8 embeddings keep the cosine
  // head within a few percent. check_inference.sh additionally bounds the
  // ranking impact (AUC delta <= 0.002) over the whole zoo.
  EXPECT_LT(MaxAbsDelta(ref, quant), 0.06f);

  ASSERT_NE(fp32->inference_plan(), nullptr);
  ASSERT_NE(int8->inference_plan(), nullptr);
  EXPECT_EQ(int8->inference_plan()->precision(),
            models::PlanPrecision::kInt8);
  const size_t fp32_bytes = fp32->inference_plan()->embedding_bytes();
  const size_t int8_bytes = int8->inference_plan()->embedding_bytes();
  ASSERT_GT(fp32_bytes, 0u);
  // int8 payload + one float scale per row: strictly between 3x and 4x.
  EXPECT_GT(static_cast<double>(fp32_bytes) / int8_bytes, 3.0);
  // The float table is freed once quantized.
  EXPECT_EQ(int8->inference_plan()->embeddings().size(), 0u);
}

TEST(Int8PlanTest, SetCalibrationInvalidatesAndRequantizes) {
  auto predictor = Fixture().MakePredictor("AHNTP", 78);
  models::InferencePlan plan(predictor.get());
  plan.SetPrecision(models::PlanPrecision::kInt8);
  std::vector<data::TrustPair> pairs = Fixture().Queries(8);
  std::vector<float> before = plan.Score(pairs);
  ASSERT_TRUE(plan.built());
  const size_t rows = plan.calibration().rows();
  ASSERT_GT(rows, 0u);

  // Halving every absmax changes every row scale, so the plan must drop the
  // old table and requantize at the next Score().
  tensor::RowCalibration tighter;
  tighter.absmax.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    tighter.absmax[r] = plan.calibration().absmax[r] * 0.5f;
  }
  const float old_scale0 = plan.quantized_embeddings().scale(0);
  ASSERT_TRUE(plan.SetCalibration(tighter).ok());
  EXPECT_FALSE(plan.built());
  std::vector<float> after = plan.Score(pairs);
  ASSERT_TRUE(plan.built());
  EXPECT_EQ(plan.quantized_embeddings().scale(0), old_scale0 * 0.5f);
  EXPECT_EQ(before.size(), after.size());
}

TEST(Int8PlanTest, BadExternalCalibrationIsRejectedNotFatal) {
  auto predictor = Fixture().MakePredictor("AHNTP", 79);
  models::InferencePlan plan(predictor.get());
  plan.SetPrecision(models::PlanPrecision::kInt8);
  std::vector<data::TrustPair> pairs = Fixture().Queries(4);
  std::vector<float> before = plan.Score(pairs);

  tensor::RowCalibration wrong_rows;
  wrong_rows.absmax = {1.0f, 2.0f};  // dataset has 60 users
  EXPECT_EQ(plan.SetCalibration(wrong_rows).code(),
            StatusCode::kInvalidArgument);

  tensor::RowCalibration bad_values;
  bad_values.absmax.assign(plan.calibration().rows(), 1.0f);
  bad_values.absmax[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(plan.SetCalibration(bad_values).code(),
            StatusCode::kInvalidArgument);

  // A rejected calibration leaves the plan serving the old table unchanged.
  EXPECT_TRUE(plan.built());
  std::vector<float> after = plan.Score(pairs);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "pair " << i;
  }
}

TEST(Int8PlanTest, PrecisionChangeInvalidatesPlan) {
  auto predictor = Fixture().MakePredictor("AHNTP", 80);
  models::InferencePlan plan(predictor.get());
  std::vector<data::TrustPair> pairs = Fixture().Queries(4);
  (void)plan.Score(pairs);
  ASSERT_TRUE(plan.built());
  plan.SetPrecision(models::PlanPrecision::kInt8);
  EXPECT_FALSE(plan.built());
  (void)plan.Score(pairs);
  EXPECT_TRUE(plan.built());
  // No-op precision set keeps the table.
  plan.SetPrecision(models::PlanPrecision::kInt8);
  EXPECT_TRUE(plan.built());
}

TEST(Int8PlanTest, ShardedInt8BitIdenticalToMonolithicInt8) {
  auto mono = Fixture().MakePredictor("AHNTP", 81);
  auto sharded = Fixture().MakePredictor("AHNTP", 81);
  mono->SetInferencePrecision(models::PlanPrecision::kInt8);
  sharded->SetInferencePrecision(models::PlanPrecision::kInt8);

  const std::string spill_dir =
      "inference_test_spill_" + std::to_string(::getpid());
  models::ShardedPlanOptions opts;
  opts.num_shards = 4;
  opts.max_resident_shards = 2;
  opts.spill_dir = spill_dir;
  sharded->EnableShardedInference(opts);

  std::vector<data::TrustPair> pairs = Fixture().Queries(24);
  std::vector<float> ref = mono->PredictProbabilities(pairs);
  std::vector<float> out = sharded->PredictProbabilities(pairs);
  ASSERT_EQ(ref.size(), out.size());
  // Sharding slices one full-table calibration per shard, so every user
  // quantizes identically to the monolithic table: bitwise parity, same
  // contract as the fp32 sharded path.
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], out[i]) << "pair " << i;
  }
  std::filesystem::remove_all(spill_dir);
}

TEST(Int8PlanTest, BackendServesInt8Precision) {
  auto factory = [] { return Fixture().MakePredictor("AHNTP", 82); };
  serve::ModelBackend backend(factory, factory(), std::nullopt,
                              models::PlanPrecision::kInt8);
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);
  auto scores = backend.ScoreBatch(pairs);
  ASSERT_TRUE(scores.ok());
  auto reference = Fixture().MakePredictor("AHNTP", 82);
  reference->SetInferencePrecision(models::PlanPrecision::kInt8);
  std::vector<float> expected = reference->PredictProbabilities(pairs);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(scores.value()[i], expected[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace ahntp
