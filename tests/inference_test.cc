// Tests for the tape-free compiled inference path: bitwise parity with the
// autograd tape across the whole model zoo and thread counts, workspace
// arena reuse, cache invalidation on weight changes, and the recursive
// training-flag contract.

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"
#include "nn/infer.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "serve/backend.h"
#include "tensor/workspace.h"

namespace ahntp {
namespace {

using models::TrustPredictor;

// ---------------------------------------------------------------------------
// Fixture: generated dataset + inputs, same shape as models_test.
// ---------------------------------------------------------------------------

class InferenceFixture {
 public:
  InferenceFixture() : rng_(123) {
    data::GeneratorConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.num_communities = 3;
    config.avg_trust_out_degree = 5.0;
    config.avg_purchases_per_user = 6.0;
    config.seed = 7;
    dataset_ = data::SocialNetworkGenerator(config).Generate();
    split_ = data::MakeSplit(dataset_);
    graph_ = dataset_.GraphFromEdges(split_.train_positive).value();
    features_ = data::BuildFeatureMatrix(dataset_);

    hypergraph::Hypergraph attr = hypergraph::BuildAttributeHypergroup(
        dataset_.num_users, dataset_.attributes);
    hypergraph::Hypergraph pairwise =
        hypergraph::BuildPairwiseHypergroup(graph_);
    hypergraph_ = hypergraph::Hypergraph::Concat(attr, pairwise);

    inputs_.features = &features_;
    inputs_.graph = &graph_;
    inputs_.dataset = &dataset_;
    inputs_.hypergraph = &hypergraph_;
    inputs_.hidden_dims = {16, 8};
    // Non-zero dropout so parity also proves eval mode skips it.
    inputs_.dropout = 0.3f;
    inputs_.rng = &rng_;
  }

  models::ModelInputs inputs() { return inputs_; }

  std::unique_ptr<TrustPredictor> MakePredictor(const std::string& name,
                                                uint64_t seed) {
    Rng rng(seed);
    models::ModelInputs inputs = inputs_;
    inputs.rng = &rng;
    auto created = core::CreatePredictor(name, inputs, core::AhntpConfig{});
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).value();
  }

  std::vector<data::TrustPair> Queries(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back({static_cast<int>(i % dataset_.num_users),
                       static_cast<int>((3 * i + 1) % dataset_.num_users),
                       1.0f});
    }
    return pairs;
  }

 private:
  Rng rng_;
  data::SocialDataset dataset_;
  data::TrustSplit split_;
  graph::Digraph graph_{0};
  tensor::Matrix features_;
  hypergraph::Hypergraph hypergraph_{0};
  models::ModelInputs inputs_;
};

InferenceFixture& Fixture() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

/// Tape-path reference probabilities: eval-mode Forward, no plan involved.
std::vector<float> TapeProbabilities(TrustPredictor* predictor,
                                     const std::vector<data::TrustPair>& pairs) {
  bool was_training = predictor->training();
  predictor->SetTraining(false);
  TrustPredictor::PairOutput out = predictor->Forward(pairs);
  predictor->SetTraining(was_training);
  std::vector<float> probs(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    probs[i] = out.probability.value().At(i, 0);
  }
  return probs;
}

// ---------------------------------------------------------------------------
// Compiled-vs-tape parity across the entire model zoo and thread counts.
// ---------------------------------------------------------------------------

class CompiledParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CompiledParityTest, BitIdenticalToTapeAtEveryThreadCount) {
  auto predictor = Fixture().MakePredictor(GetParam(), 42);
  std::vector<data::TrustPair> pairs = Fixture().Queries(17);
  std::vector<float> reference = TapeProbabilities(predictor.get(), pairs);

  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    // Invalidate so the all-user encode itself reruns at this thread count.
    predictor->InvalidateCaches();
    std::vector<float> compiled = predictor->PredictProbabilities(pairs);
    ASSERT_EQ(compiled.size(), reference.size());
    for (size_t i = 0; i < compiled.size(); ++i) {
      EXPECT_EQ(compiled[i], reference[i])
          << GetParam() << " pair " << i << " threads=" << threads;
    }
  }
  SetNumThreads(0);
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, CompiledParityTest,
                         ::testing::ValuesIn(core::AvailableModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Layer-level parity: InferLinear / InferMlp / InferLayerNorm.
// ---------------------------------------------------------------------------

tensor::Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  tensor::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform(-2.0f, 2.0f);
  }
  return m;
}

TEST(InferLayersTest, LinearMatchesTapeBitwise) {
  Rng rng(1);
  nn::Linear layer(6, 4, &rng);
  tensor::Matrix x = RandomMatrix(9, 6, &rng);
  tensor::Matrix tape = layer.Forward(autograd::Constant(x)).value();
  tensor::Workspace ws;
  tensor::Matrix& compiled = nn::InferLinear(layer, x, &ws);
  ASSERT_EQ(compiled.rows(), tape.rows());
  ASSERT_EQ(compiled.cols(), tape.cols());
  for (size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(compiled.data()[i], tape.data()[i]) << "entry " << i;
  }
}

TEST(InferLayersTest, MlpMatchesEvalTapeBitwise) {
  Rng rng(2);
  nn::Mlp mlp({6, 5, 3}, &rng, nn::Activation::kRelu, nn::Activation::kNone,
              /*dropout=*/0.5f);
  mlp.SetTraining(false);
  tensor::Matrix x = RandomMatrix(7, 6, &rng);
  tensor::Matrix tape = mlp.Forward(autograd::Constant(x)).value();
  tensor::Workspace ws;
  tensor::Matrix& compiled = nn::InferMlp(mlp, x, &ws);
  ASSERT_EQ(compiled.rows(), tape.rows());
  ASSERT_EQ(compiled.cols(), tape.cols());
  for (size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(compiled.data()[i], tape.data()[i]) << "entry " << i;
  }
}

TEST(InferLayersTest, LayerNormMatchesTapeBitwise) {
  Rng rng(3);
  nn::LayerNorm norm(5);
  // Perturb gain/bias away from the identity so the test is non-trivial.
  // Variable handles share their node, so mutating the copies edits norm.
  autograd::Variable gain = norm.gain();
  autograd::Variable bias = norm.bias();
  for (size_t i = 0; i < 5; ++i) {
    gain.mutable_value().At(0, i) = rng.Uniform(0.5f, 1.5f);
    bias.mutable_value().At(0, i) = rng.Uniform(-0.5f, 0.5f);
  }
  tensor::Matrix x = RandomMatrix(8, 5, &rng);
  tensor::Matrix tape = norm.Forward(autograd::Constant(x)).value();
  tensor::Workspace ws;
  tensor::Matrix& compiled = nn::InferLayerNorm(norm, x, &ws);
  ASSERT_EQ(compiled.rows(), tape.rows());
  ASSERT_EQ(compiled.cols(), tape.cols());
  for (size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(compiled.data()[i], tape.data()[i]) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Workspace arena semantics.
// ---------------------------------------------------------------------------

TEST(WorkspaceTest, ResetReusesSlotsInOrder) {
  tensor::Workspace ws;
  tensor::Matrix* a = ws.Acquire(4, 4);
  tensor::Matrix* b = ws.Acquire(2, 8);
  ws.Reset();
  EXPECT_EQ(ws.Acquire(4, 4), a);
  EXPECT_EQ(ws.Acquire(2, 8), b);
  EXPECT_EQ(ws.num_slots(), 2u);
}

TEST(WorkspaceTest, SteadyStateLoopIsAllocationFree) {
  tensor::Workspace ws;
  // Warm-up pass establishes the slots.
  ws.Acquire(10, 3);
  ws.Acquire(5, 5);
  ws.Reset();
  size_t warmed = ws.allocations();
  for (int i = 0; i < 100; ++i) {
    ws.Acquire(10, 3);
    ws.Acquire(5, 5);
    ws.Reset();
  }
  EXPECT_EQ(ws.allocations(), warmed);
  // A larger request grows a buffer: allocations must tick up.
  ws.Acquire(20, 20);
  EXPECT_GT(ws.allocations(), warmed);
}

TEST(WorkspaceTest, AcquireWithinCapacityDoesNotCount) {
  tensor::Workspace ws;
  ws.Acquire(8, 8);
  ws.Reset();
  size_t warmed = ws.allocations();
  // Smaller shape fits in the existing 64-float buffer.
  ws.Acquire(4, 4);
  EXPECT_EQ(ws.allocations(), warmed);
}

TEST(InferencePlanTest, ScoringLoopIsAllocationFreeOnceWarm) {
  auto predictor = Fixture().MakePredictor("AHNTP", 11);
  std::vector<data::TrustPair> pairs = Fixture().Queries(12);
  predictor->WarmInferencePlan();
  (void)predictor->PredictProbabilities(pairs);  // warms the scoring slots
  const models::InferencePlan* plan = predictor->inference_plan();
  ASSERT_NE(plan, nullptr);
  size_t warmed = plan->workspace().allocations();
  for (int i = 0; i < 20; ++i) {
    (void)predictor->PredictProbabilities(pairs);
  }
  EXPECT_EQ(plan->workspace().allocations(), warmed);
}

// ---------------------------------------------------------------------------
// Cache invalidation: weights must never go stale.
// ---------------------------------------------------------------------------

TEST(InferencePlanTest, TrainingForwardInvalidatesThePlan) {
  auto predictor = Fixture().MakePredictor("SGC", 21);
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);
  (void)predictor->PredictProbabilities(pairs);
  ASSERT_NE(predictor->inference_plan(), nullptr);
  EXPECT_TRUE(predictor->inference_plan()->built());

  predictor->SetTraining(true);
  (void)predictor->Forward(pairs);
  EXPECT_FALSE(predictor->inference_plan()->built());
}

TEST(InferencePlanTest, ManualWeightEditTracksTapeAfterInvalidate) {
  auto predictor = Fixture().MakePredictor("SGC", 22);
  std::vector<data::TrustPair> pairs = Fixture().Queries(8);
  (void)predictor->PredictProbabilities(pairs);

  // Mutate a parameter in place, as an optimizer step would.
  std::vector<autograd::Variable> params = predictor->Parameters();
  ASSERT_FALSE(params.empty());
  for (size_t i = 0; i < params[0].value().size(); ++i) {
    params[0].mutable_value().data()[i] *= 1.5f;
  }
  predictor->InvalidateCaches();

  std::vector<float> compiled = predictor->PredictProbabilities(pairs);
  std::vector<float> tape = TapeProbabilities(predictor.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(compiled[i], tape[i]) << "pair " << i;
  }
}

TEST(InferencePlanTest, LoadModuleInvalidatesCachedEmbeddings) {
  auto source = Fixture().MakePredictor("SGC", 31);
  auto target = Fixture().MakePredictor("SGC", 32);
  std::vector<data::TrustPair> pairs = Fixture().Queries(9);

  std::vector<float> source_probs = target->PredictProbabilities(pairs);
  (void)source_probs;  // plan built on the pre-load weights

  std::string path = ::testing::TempDir() + "/inference_plan_load.ckpt";
  ASSERT_TRUE(nn::SaveModule(*source, path).ok());
  ASSERT_TRUE(nn::LoadModule(target.get(), path).ok());
  std::filesystem::remove(path);

  // Post-load predictions must reflect the loaded weights, not the cache.
  std::vector<float> loaded = target->PredictProbabilities(pairs);
  std::vector<float> expected = TapeProbabilities(source.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(loaded[i], expected[i]) << "pair " << i;
  }
}

// ---------------------------------------------------------------------------
// Serving: reload keeps the plan fresh, failures keep the old plan serving.
// ---------------------------------------------------------------------------

serve::ModelBackend::Factory MakeBackendFactory(uint64_t seed) {
  return [seed]() { return Fixture().MakePredictor("AHNTP", seed); };
}

TEST(BackendPlanTest, ReloadServesTheLoadedWeightsThroughThePlan) {
  auto factory = MakeBackendFactory(5);
  serve::ModelBackend backend(factory, factory());
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);

  auto other = Fixture().MakePredictor("AHNTP", 99);
  std::string path = ::testing::TempDir() + "/inference_reload.ckpt";
  ASSERT_TRUE(nn::SaveModule(*other, path).ok());

  auto before = backend.ScoreBatch(pairs);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(backend.Reload(path).ok());
  std::filesystem::remove(path);

  auto after = backend.ScoreBatch(pairs);
  ASSERT_TRUE(after.ok());
  std::vector<float> expected = TapeProbabilities(other.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*after)[i], expected[i]) << "pair " << i;
  }
}

TEST(BackendPlanTest, FaultedReloadKeepsTheWarmPlanServing) {
  auto factory = MakeBackendFactory(6);
  serve::ModelBackend backend(factory, factory());
  std::vector<data::TrustPair> pairs = Fixture().Queries(6);
  auto before = backend.ScoreBatch(pairs);
  ASSERT_TRUE(before.ok());

  auto other = Fixture().MakePredictor("AHNTP", 77);
  std::string path = ::testing::TempDir() + "/inference_reload_fault.ckpt";
  ASSERT_TRUE(nn::SaveModule(*other, path).ok());

  // Injected I/O failure at the reload fault site: the old model (and its
  // warmed plan) must keep serving identical scores.
  ASSERT_TRUE(fault::EnableFromSpec("serve.reload@1").ok());
  EXPECT_FALSE(backend.Reload(path).ok());
  fault::Disable();
  EXPECT_EQ(backend.generation(), 0);

  auto after = backend.ScoreBatch(pairs);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*before)[i], (*after)[i]) << "pair " << i;
  }

  // The fault cleared, the same checkpoint loads and takes effect.
  ASSERT_TRUE(backend.Reload(path).ok());
  std::filesystem::remove(path);
  EXPECT_EQ(backend.generation(), 1);
  auto reloaded = backend.ScoreBatch(pairs);
  ASSERT_TRUE(reloaded.ok());
  std::vector<float> expected = TapeProbabilities(other.get(), pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*reloaded)[i], expected[i]) << "pair " << i;
  }
}

// ---------------------------------------------------------------------------
// Training-flag contract: recursive SetTraining and save/restore.
// ---------------------------------------------------------------------------

void ExpectTrainingRecursively(nn::Module* module, bool expected) {
  EXPECT_EQ(module->training(), expected);
  for (nn::Module* sub : module->Submodules()) {
    ExpectTrainingRecursively(sub, expected);
  }
}

class SetTrainingRecursionTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(SetTrainingRecursionTest, FlagReachesEverySubmodule) {
  auto predictor = Fixture().MakePredictor(GetParam(), 55);
  predictor->SetTraining(true);
  ExpectTrainingRecursively(predictor.get(), true);
  predictor->SetTraining(false);
  ExpectTrainingRecursively(predictor.get(), false);
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, SetTrainingRecursionTest,
                         ::testing::ValuesIn(core::AvailableModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(SetTrainingRecursionTest, MlpPropagatesToLayers) {
  Rng rng(4);
  nn::Mlp mlp({4, 3, 2}, &rng);
  mlp.SetTraining(true);
  for (size_t i = 0; i < mlp.num_layers(); ++i) {
    EXPECT_TRUE(mlp.layer(i).training());
  }
  mlp.SetTraining(false);
  for (size_t i = 0; i < mlp.num_layers(); ++i) {
    EXPECT_FALSE(mlp.layer(i).training());
  }
}

TEST(PredictProbabilitiesTest, SavesAndRestoresTrainingFlagRecursively) {
  auto predictor = Fixture().MakePredictor("AHNTP", 66);
  std::vector<data::TrustPair> pairs = Fixture().Queries(5);

  predictor->SetTraining(true);
  (void)predictor->PredictProbabilities(pairs);
  ExpectTrainingRecursively(predictor.get(), true);

  predictor->SetTraining(false);
  (void)predictor->PredictProbabilities(pairs);
  ExpectTrainingRecursively(predictor.get(), false);
}

// ---------------------------------------------------------------------------
// Metrics: plan builds, cache hits/misses, workspace gauge.
// ---------------------------------------------------------------------------

TEST(InferenceMetricsTest, CountsBuildsHitsAndMisses) {
  metrics::Enable();
  metrics::Reset();
  auto predictor = Fixture().MakePredictor("SGC", 71);
  std::vector<data::TrustPair> pairs = Fixture().Queries(4);

  (void)predictor->PredictProbabilities(pairs);  // miss + build
  (void)predictor->PredictProbabilities(pairs);  // hit
  (void)predictor->PredictProbabilities(pairs);  // hit
  predictor->InvalidateCaches();
  (void)predictor->PredictProbabilities(pairs);  // miss + build

  metrics::Snapshot snapshot = metrics::Collect();
  EXPECT_EQ(snapshot.CounterValue("infer.plan_builds"), 2);
  EXPECT_EQ(snapshot.CounterValue("infer.cache_misses"), 2);
  EXPECT_EQ(snapshot.CounterValue("infer.cache_hits"), 2);
  double ws_bytes = -1.0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "infer.workspace_bytes") ws_bytes = gauge.value;
  }
  EXPECT_GT(ws_bytes, 0.0);
  metrics::Disable();
}

}  // namespace
}  // namespace ahntp
