#include <cmath>

#include <gtest/gtest.h>

#include "nn/init.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "test_util.h"

namespace ahntp::nn {
namespace {

using autograd::Variable;
using tensor::Matrix;

TEST(InitTest, XavierUniformBounds) {
  Rng rng(1);
  Matrix w = XavierUniform(100, 50, &rng);
  float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(w.MaxAbs(), bound);
  EXPECT_NEAR(w.Mean(), 0.0f, 0.01f);
}

TEST(InitTest, KaimingNormalVariance) {
  Rng rng(2);
  Matrix w = KaimingNormal(200, 100, &rng);
  double sq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  EXPECT_NEAR(sq / w.size(), 2.0 / 200.0, 2e-3);
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(3);
  Linear layer(4, 3, &rng);
  Variable x = autograd::Constant(Matrix::Randn(5, 4, &rng));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  Linear no_bias(4, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  Variable x = autograd::Constant(Matrix::Randn(4, 3, &rng));
  Variable loss = autograd::ReduceSum(layer.Forward(x));
  loss.Backward();
  EXPECT_GT(layer.weight().grad().MaxAbs(), 0.0f);
  EXPECT_GT(layer.bias().grad().MaxAbs(), 0.0f);
}

TEST(MlpTest, LayerCountAndShapes) {
  Rng rng(5);
  Mlp mlp({10, 8, 6, 4}, &rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  EXPECT_EQ(mlp.in_features(), 10u);
  EXPECT_EQ(mlp.out_features(), 4u);
  Variable x = autograd::Constant(Matrix::Randn(2, 10, &rng));
  Variable y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 4u);
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(MlpTest, OutputActivationApplied) {
  Rng rng(6);
  Mlp mlp({5, 4}, &rng, Activation::kRelu, Activation::kSigmoid);
  Variable x = autograd::Constant(Matrix::Randn(3, 5, &rng, 0.0f, 3.0f));
  Variable y = mlp.Forward(x);
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_GT(y.value().data()[i], 0.0f);
    EXPECT_LT(y.value().data()[i], 1.0f);
  }
}

TEST(MlpTest, DropoutOnlyInTraining) {
  Rng rng(7);
  Mlp mlp({6, 6, 6}, &rng, Activation::kNone, Activation::kNone,
          /*dropout=*/0.9f);
  Variable x = autograd::Constant(Matrix(2, 6, 1.0f));
  mlp.SetTraining(false);
  Matrix eval1 = mlp.Forward(x).value();
  Matrix eval2 = mlp.Forward(x).value();
  EXPECT_TRUE(eval1.AllClose(eval2));  // eval is deterministic
  mlp.SetTraining(true);
  Matrix train1 = mlp.Forward(x).value();
  EXPECT_FALSE(train1.AllClose(eval1, 1e-6f));  // dropout perturbs
}

TEST(ModuleTest, NumParametersCountsScalars) {
  Rng rng(8);
  Linear layer(3, 2, &rng);
  EXPECT_EQ(layer.NumParameters(), 3u * 2u + 2u);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(9);
  Linear layer(2, 2, &rng);
  Variable x = autograd::Constant(Matrix::Randn(2, 2, &rng));
  autograd::ReduceSum(layer.Forward(x)).Backward();
  EXPECT_GT(layer.weight().grad().MaxAbs(), 0.0f);
  layer.ZeroGrad();
  EXPECT_EQ(layer.weight().grad().MaxAbs(), 0.0f);
}

// --------------------------------------------------------------------------
// Optimizers: minimize f(w) = ||w - target||^2, a convex sanity problem.
// --------------------------------------------------------------------------

float RunOptimization(Optimizer* opt, Variable w, const Matrix& target,
                      int steps) {
  float final_loss = 0.0f;
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Variable diff =
        autograd::Sub(w, autograd::Constant(target));
    Variable loss = autograd::ReduceSum(autograd::Mul(diff, diff));
    loss.Backward();
    opt->Step();
    final_loss = loss.value().At(0, 0);
  }
  return final_loss;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(10);
  Variable w = autograd::Parameter(Matrix::Randn(3, 3, &rng));
  Matrix target = Matrix::Randn(3, 3, &rng);
  Sgd sgd({w}, 0.1f);
  float loss = RunOptimization(&sgd, w, target, 100);
  EXPECT_LT(loss, 1e-6f);
  EXPECT_TRUE(w.value().AllClose(target, 1e-3f));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(11);
  Variable w = autograd::Parameter(Matrix::Randn(3, 3, &rng));
  Matrix target = Matrix::Randn(3, 3, &rng);
  Adam adam({w}, 0.05f);
  float loss = RunOptimization(&adam, w, target, 300);
  EXPECT_LT(loss, 1e-4f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  // With zero data gradient, decay alone should pull weights toward zero.
  Variable w = autograd::Parameter(Matrix(2, 2, 1.0f));
  Adam adam({w}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    // Touch the tape so gradients exist (all zeros).
    autograd::ReduceSum(autograd::Scale(w, 0.0f)).Backward();
    adam.Step();
  }
  EXPECT_LT(w.value().MaxAbs(), 1.0f);
}

TEST(SgdTest, WeightDecayMatchesClosedForm) {
  Variable w = autograd::Parameter(Matrix(1, 1, 1.0f));
  Sgd sgd({w}, 0.5f, /*weight_decay=*/0.2f);
  sgd.ZeroGrad();
  autograd::ReduceSum(autograd::Scale(w, 0.0f)).Backward();
  sgd.Step();
  // w <- w - lr * decay * w = 1 - 0.5*0.2 = 0.9
  EXPECT_NEAR(w.value().At(0, 0), 0.9f, 1e-6f);
}

TEST(AdamTest, StepCountAdvances) {
  Variable w = autograd::Parameter(Matrix(1, 1, 1.0f));
  Adam adam({w});
  EXPECT_EQ(adam.step_count(), 0);
  adam.ZeroGrad();
  autograd::ReduceSum(w).Backward();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
}

}  // namespace
}  // namespace ahntp::nn
