#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hypergraph/regularizer.h"
#include "test_util.h"

namespace ahntp::nn {
namespace {

using ahntp::testing::ExpectGradientsClose;
using autograd::Variable;
using tensor::Matrix;

// ---------------------------------------------------------------------------
// Binary cross-entropy (Eq. 21)
// ---------------------------------------------------------------------------

TEST(BceTest, MatchesManualComputation) {
  Variable probs = autograd::Parameter(Matrix::FromRows({{0.9f}, {0.2f}}));
  std::vector<float> targets = {1.0f, 0.0f};
  Variable loss = BinaryCrossEntropy(probs, targets);
  float expected = -0.5f * (std::log(0.9f) + std::log(0.8f));
  EXPECT_NEAR(loss.value().At(0, 0), expected, 1e-5f);
}

TEST(BceTest, PerfectPredictionsNearZero) {
  Variable probs =
      autograd::Parameter(Matrix::FromRows({{0.9999f}, {0.0001f}}));
  Variable loss = BinaryCrossEntropy(probs, {1.0f, 0.0f});
  EXPECT_LT(loss.value().At(0, 0), 1e-3f);
}

TEST(BceTest, ExtremeValuesAreClamped) {
  Variable probs = autograd::Parameter(Matrix::FromRows({{0.0f}, {1.0f}}));
  Variable loss = BinaryCrossEntropy(probs, {1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(loss.value().At(0, 0)));
}

TEST(BceTest, GradientCheck) {
  Rng rng(1);
  Matrix interior = Matrix::RandUniform(5, 1, &rng, 0.2f, 0.8f);
  std::vector<float> targets = {1, 0, 1, 1, 0};
  ExpectGradientsClose(
      [targets](const std::vector<Variable>& p) {
        return BinaryCrossEntropy(p[0], targets);
      },
      {autograd::Parameter(interior)});
}

TEST(BceDeathTest, RejectsNonBinaryTargets) {
  Variable probs = autograd::Parameter(Matrix::FromRows({{0.5f}}));
  EXPECT_DEATH(BinaryCrossEntropy(probs, {0.5f}), "0 or 1");
}

// ---------------------------------------------------------------------------
// Supervised contrastive loss (Eq. 20)
// ---------------------------------------------------------------------------

TEST(SupConTest, MatchesManualSingleAnchor) {
  // One anchor with pairs: positive sim 0.8, negative sims 0.1 and -0.3.
  Variable sims =
      autograd::Parameter(Matrix::FromRows({{0.8f}, {0.1f}, {-0.3f}}));
  std::vector<int> anchors = {0, 0, 0};
  std::vector<bool> positive = {true, false, false};
  float t = 0.3f;
  Variable loss =
      SupervisedContrastiveLoss(sims, anchors, 1, positive, t);
  float e_pos = std::exp(0.8f / t);
  float denom = e_pos + std::exp(0.1f / t) + std::exp(-0.3f / t);
  EXPECT_NEAR(loss.value().At(0, 0), -std::log(e_pos / denom), 1e-4f);
}

TEST(SupConTest, AveragesOverAnchorsWithPositives) {
  // Anchor 0 has a positive; anchor 1 has only negatives and must be
  // excluded from the average.
  Variable sims = autograd::Parameter(
      Matrix::FromRows({{0.5f}, {0.0f}, {0.2f}}));
  std::vector<int> anchors = {0, 0, 1};
  std::vector<bool> positive = {true, false, false};
  Variable loss = SupervisedContrastiveLoss(sims, anchors, 2, positive, 0.5f);
  float e_pos = std::exp(0.5f / 0.5f);
  float denom = e_pos + std::exp(0.0f);
  EXPECT_NEAR(loss.value().At(0, 0), -std::log(e_pos / denom), 1e-4f);
}

TEST(SupConTest, PerfectSeparationGivesLowerLoss) {
  std::vector<int> anchors = {0, 0};
  std::vector<bool> positive = {true, false};
  Variable good =
      autograd::Parameter(Matrix::FromRows({{0.95f}, {-0.95f}}));
  Variable bad = autograd::Parameter(Matrix::FromRows({{-0.95f}, {0.95f}}));
  float loss_good =
      SupervisedContrastiveLoss(good, anchors, 1, positive, 0.3f)
          .value().At(0, 0);
  float loss_bad =
      SupervisedContrastiveLoss(bad, anchors, 1, positive, 0.3f)
          .value().At(0, 0);
  EXPECT_LT(loss_good, loss_bad);
}

TEST(SupConTest, TemperatureSharpens) {
  // Lower temperature amplifies the gap between good and bad similarity.
  std::vector<int> anchors = {0, 0};
  std::vector<bool> positive = {true, false};
  Variable sims = autograd::Parameter(Matrix::FromRows({{0.6f}, {0.4f}}));
  float loss_sharp =
      SupervisedContrastiveLoss(sims, anchors, 1, positive, 0.1f)
          .value().At(0, 0);
  float loss_smooth =
      SupervisedContrastiveLoss(sims, anchors, 1, positive, 1.0f)
          .value().At(0, 0);
  EXPECT_LT(loss_sharp, loss_smooth);
}

TEST(SupConTest, GradientCheck) {
  Rng rng(2);
  Matrix sims = Matrix::RandUniform(6, 1, &rng, -0.8f, 0.8f);
  std::vector<int> anchors = {0, 0, 0, 1, 1, 1};
  std::vector<bool> positive = {true, false, true, false, true, false};
  ExpectGradientsClose(
      [&](const std::vector<Variable>& p) {
        return SupervisedContrastiveLoss(p[0], anchors, 2, positive, 0.3f);
      },
      {autograd::Parameter(sims)});
}

TEST(SupConDeathTest, NeedsAPositivePair) {
  Variable sims = autograd::Parameter(Matrix::FromRows({{0.5f}}));
  EXPECT_DEATH(
      SupervisedContrastiveLoss(sims, {0}, 1, {false}, 0.3f),
      "at least one anchor");
}

// ---------------------------------------------------------------------------
// Combined loss (Eq. 22)
// ---------------------------------------------------------------------------

TEST(CombinedLossTest, WeightsApplied) {
  Variable l1 = autograd::Parameter(Matrix::FromRows({{2.0f}}));
  Variable l2 = autograd::Parameter(Matrix::FromRows({{3.0f}}));
  Variable total = CombinedLoss(l1, l2, 0.5f, 2.0f);
  EXPECT_NEAR(total.value().At(0, 0), 0.5f * 2.0f + 2.0f * 3.0f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Hypergraph regularizer (Eqs. 23-24)
// ---------------------------------------------------------------------------

hypergraph::Hypergraph SmallHypergraph() {
  auto hg = hypergraph::Hypergraph::FromEdges(
      5, {{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}}, {1.0f, 2.0f, 1.0f, 0.5f});
  return hg.value();
}

TEST(RegularizerTest, ExplicitLaplacianNonNegativeOnRandomF) {
  // f^T L f >= 0: the normalized hypergraph Laplacian is PSD.
  hypergraph::Hypergraph hg = SmallHypergraph();
  tensor::CsrMatrix lap = hg.Laplacian();
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Variable f = autograd::Parameter(Matrix::Randn(5, 3, &rng));
    Variable r = HypergraphRegularizer(f, lap);
    EXPECT_GE(r.value().At(0, 0), -1e-4f);
  }
}

TEST(RegularizerTest, FactoredFormMatchesExplicitLaplacian) {
  hypergraph::Hypergraph hg = SmallHypergraph();
  tensor::CsrMatrix lap = hg.Laplacian();
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Variable f = autograd::Parameter(Matrix::Randn(5, 4, &rng));
    float explicit_value = HypergraphRegularizer(f, lap).value().At(0, 0);
    float factored_value =
        hypergraph::HypergraphSmoothness(f, hg).value().At(0, 0);
    EXPECT_NEAR(explicit_value, factored_value,
                1e-3f + 1e-3f * std::fabs(explicit_value));
  }
}

TEST(RegularizerTest, ConstantSignalOnConnectedEdgeIsSmooth) {
  // A hypergraph where all vertices share one edge: constant f should give
  // (near) zero smoothness penalty.
  auto hg = hypergraph::Hypergraph::FromEdges(4, {{0, 1, 2, 3}}).value();
  Variable f = autograd::Parameter(Matrix(4, 2, 1.0f));
  Variable r = hypergraph::HypergraphSmoothness(f, hg);
  EXPECT_NEAR(r.value().At(0, 0), 0.0f, 1e-4f);
}

TEST(RegularizerTest, GradientCheckFactored) {
  hypergraph::Hypergraph hg = SmallHypergraph();
  Rng rng(5);
  ExpectGradientsClose(
      [&hg](const std::vector<Variable>& p) {
        return hypergraph::HypergraphSmoothness(p[0], hg);
      },
      {autograd::Parameter(Matrix::Randn(5, 2, &rng))});
}

TEST(RegularizerTest, GradientCheckExplicit) {
  hypergraph::Hypergraph hg = SmallHypergraph();
  tensor::CsrMatrix lap = hg.Laplacian();
  Rng rng(6);
  ExpectGradientsClose(
      [&lap](const std::vector<Variable>& p) {
        return HypergraphRegularizer(p[0], lap);
      },
      {autograd::Parameter(Matrix::Randn(5, 2, &rng))});
}

}  // namespace
}  // namespace ahntp::nn
