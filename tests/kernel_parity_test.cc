// Differential tests for the SIMD kernel family (DESIGN.md §15): every
// AVX2 code path is compared against the frozen scalar oracle under the
// two-tier parity contract —
//   * exact tier: elementwise kernels are *bitwise* identical to scalar,
//     including NaN / signed-zero / infinity probes and remainder lanes;
//   * fma tier: fused/reassociated reductions (MatMul, dots, norms, SpMM)
//     agree to tolerance and are bitwise-stable across thread counts.
// Sizes deliberately straddle the 8-lane width (n % 8 ∈ {0,1,7}), empty and
// one-element inputs, and unaligned views. Everything skips cleanly on
// machines where the AVX2 kernels can't run.

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/csr.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/simd.h"

namespace ahntp {
namespace {

using tensor::CsrMatrix;
using tensor::Matrix;
using tensor::Triplet;

// ---------------------------------------------------------------------------
// ISA / flag plumbing
// ---------------------------------------------------------------------------

TEST(KernelIsaTest, ParseAcceptsCanonicalNames) {
  Result<KernelIsa> scalar = ParseKernelIsa("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar.value(), KernelIsa::kScalar);

  Result<KernelIsa> autod = ParseKernelIsa("auto");
  ASSERT_TRUE(autod.ok());
  EXPECT_TRUE(KernelIsaSupported(autod.value()));

  Result<KernelIsa> avx2 = ParseKernelIsa("avx2");
  if (KernelIsaSupported(KernelIsa::kAvx2)) {
    ASSERT_TRUE(avx2.ok());
    EXPECT_EQ(avx2.value(), KernelIsa::kAvx2);
  } else {
    // Explicitly requesting an ISA this build/CPU can't run is an operator
    // error, not a silent fallback.
    EXPECT_EQ(avx2.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(KernelIsaTest, ParseRejectsGarbage) {
  for (const char* bad : {"", "AVX2", "Scalar", "sse", "avx512", "auto ",
                          "scalar\n", "int8"}) {
    Result<KernelIsa> r = ParseKernelIsa(bad);
    EXPECT_FALSE(r.ok()) << "accepted: '" << bad << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(KernelIsaTest, NamesRoundTrip) {
  EXPECT_STREQ(KernelIsaName(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(KernelIsaName(KernelIsa::kAvx2), "avx2");
  EXPECT_FALSE(CpuFeaturesString().empty());
  EXPECT_TRUE(KernelIsaSupported(KernelIsa::kScalar));
}

// ---------------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------------

/// Restores the dispatch ISA on scope exit so a failing assertion can't leak
/// a pinned ISA into later tests in this process.
class IsaGuard {
 public:
  IsaGuard() : saved_(ActiveKernelIsa()) {}
  ~IsaGuard() { SetKernelIsa(saved_); }

 private:
  KernelIsa saved_;
};

class ThreadGuard {
 public:
  ThreadGuard() : saved_(NumThreads()) {}
  ~ThreadGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

/// Element counts straddling the 8-float AVX2 lane width: empty, single
/// element, sub-lane, exact lanes, one-off remainders, and larger blocks
/// that cross the ParallelFor grain.
const size_t kLaneSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100,
                             255, 256, 257};

bool BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Random matrix with special-value probes (NaN, ±inf, -0.0, denormal,
/// exact zero) sprinkled at deterministic positions — the exact tier must
/// reproduce the scalar oracle's handling of all of them bit-for-bit.
Matrix ProbeMatrix(size_t rows, size_t cols, Rng* rng, bool specials) {
  Matrix m = Matrix::Randn(rows, cols, rng, 0.0f, 2.0f);
  if (!specials || m.size() < 12) return m;
  float* p = m.data();
  const size_t n = m.size();
  p[n / 12] = std::numeric_limits<float>::quiet_NaN();
  p[(3 * n) / 12] = std::numeric_limits<float>::infinity();
  p[(5 * n) / 12] = -std::numeric_limits<float>::infinity();
  p[(7 * n) / 12] = -0.0f;
  p[(9 * n) / 12] = std::numeric_limits<float>::denorm_min();
  p[(11 * n) / 12] = 0.0f;
  return m;
}

class KernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!KernelIsaSupported(KernelIsa::kAvx2)) {
      GTEST_SKIP() << "AVX2 kernels unavailable on this build/CPU";
    }
  }

  /// Runs `op` once under the scalar oracle and once under AVX2 and hands
  /// both results to `compare`. `op` must be deterministic.
  template <typename Op, typename Compare>
  void Differential(Op op, Compare compare) {
    IsaGuard guard;
    SetKernelIsa(KernelIsa::kScalar);
    auto oracle = op();
    SetKernelIsa(KernelIsa::kAvx2);
    auto candidate = op();
    compare(oracle, candidate);
  }

  template <typename Op>
  void ExpectBitwise(Op op, const char* what) {
    Differential(op, [&](const Matrix& s, const Matrix& v) {
      EXPECT_TRUE(BitEqual(s, v))
          << what << ": scalar " << s.DebugString() << " vs avx2 "
          << v.DebugString();
    });
  }

  template <typename Op>
  void ExpectClose(Op op, float tol, const char* what) {
    Differential(op, [&](const Matrix& s, const Matrix& v) {
      ASSERT_EQ(s.rows(), v.rows()) << what;
      ASSERT_EQ(s.cols(), v.cols()) << what;
      EXPECT_TRUE(s.AllClose(v, tol)) << what << ": scalar "
                                      << s.DebugString() << " vs avx2 "
                                      << v.DebugString();
    });
  }
};

// ---------------------------------------------------------------------------
// Exact tier: elementwise kernels, bitwise vs scalar
// ---------------------------------------------------------------------------

TEST_F(KernelParityTest, ElementwiseUnaryBitwise) {
  Rng rng(41);
  for (size_t n : kLaneSizes) {
    // Tall-and-skinny and single-row shapes both hit the per-chunk dispatch.
    for (size_t cols : {n, size_t{1}}) {
      if (n == 0 && cols == 0) continue;
      size_t rows = cols == 0 ? 0 : (n == 0 ? 0 : (n + cols - 1) / cols);
      Matrix a = ProbeMatrix(rows, cols, &rng, /*specials=*/true);
      auto run = [&](auto body) {
        Matrix out(rows, cols);
        body(&out, a);
        return out;
      };
      ExpectBitwise([&] { return run([](Matrix* o, const Matrix& x) {
                      tensor::ReluInto(o, x); }); }, "ReluInto");
      ExpectBitwise([&] { return run([](Matrix* o, const Matrix& x) {
                      tensor::LeakyReluInto(o, x, 0.01f); }); },
                    "LeakyReluInto");
      ExpectBitwise([&] { return run([](Matrix* o, const Matrix& x) {
                      tensor::ClampInto(o, x, -0.75f, 0.5f); }); },
                    "ClampInto");
      ExpectBitwise([&] { return run([](Matrix* o, const Matrix& x) {
                      tensor::AbsInto(o, x); }); }, "AbsInto");
      ExpectBitwise([&] { return run([](Matrix* o, const Matrix& x) {
                      tensor::SqrtInto(o, x, 1e-12f); }); }, "SqrtInto");
    }
  }
}

TEST_F(KernelParityTest, ElementwiseBinaryBitwise) {
  Rng rng(43);
  for (size_t n : kLaneSizes) {
    size_t rows = n == 0 ? 0 : 3;
    Matrix a = ProbeMatrix(rows, n, &rng, /*specials=*/true);
    Matrix b = ProbeMatrix(rows, n, &rng, /*specials=*/false);
    auto binary = [&](auto body) {
      return [&, body] {
        Matrix out(rows, n);
        body(&out, a, b);
        return out;
      };
    };
    ExpectBitwise(binary([](Matrix* o, const Matrix& x, const Matrix& y) {
                    tensor::AddInto(o, x, y); }), "AddInto");
    ExpectBitwise(binary([](Matrix* o, const Matrix& x, const Matrix& y) {
                    tensor::SubInto(o, x, y); }), "SubInto");
    ExpectBitwise(binary([](Matrix* o, const Matrix& x, const Matrix& y) {
                    tensor::HadamardInto(o, x, y); }), "HadamardInto");
    ExpectBitwise([&] {
      Matrix out(rows, n);
      tensor::ScaleInto(&out, a, -1.75f);
      return out;
    }, "ScaleInto");
    ExpectBitwise([&] {
      Matrix out(rows, n);
      tensor::AddScalarInto(&out, a, 0.333f);
      return out;
    }, "AddScalarInto");
    // In-place compound operators route through the same primitives.
    ExpectBitwise([&] { Matrix c = a; c += b; return c; }, "operator+=");
    ExpectBitwise([&] { Matrix c = a; c -= b; return c; }, "operator-=");
    ExpectBitwise([&] { Matrix c = a; c *= 0.77f; return c; }, "operator*=");
  }
}

TEST_F(KernelParityTest, BroadcastAndSegmentBitwise) {
  Rng rng(47);
  for (size_t cols : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                      size_t{33}}) {
    const size_t rows = 13;
    Matrix a = ProbeMatrix(rows, cols, &rng, /*specials=*/false);
    Matrix row = Matrix::Randn(1, cols, &rng);
    Matrix col = Matrix::Randn(rows, 1, &rng);
    ExpectBitwise([&] {
      Matrix out(rows, cols);
      tensor::AddRowBroadcastInto(&out, a, row);
      return out;
    }, "AddRowBroadcastInto");
    ExpectBitwise([&] {
      Matrix out(rows, cols);
      tensor::MulRowBroadcastInto(&out, a, row);
      return out;
    }, "MulRowBroadcastInto");
    ExpectBitwise([&] {
      Matrix out(rows, cols);
      tensor::MulColBroadcastInto(&out, a, col);
      return out;
    }, "MulColBroadcastInto");
    // SegmentSum adds whole rows in ascending row order — elementwise adds,
    // so the AVX2 path must stay bitwise. Interleaved segment ids exercise
    // repeated accumulation into the same output row.
    std::vector<int> segments(rows);
    for (size_t r = 0; r < rows; ++r) segments[r] = static_cast<int>(r % 4);
    ExpectBitwise([&] {
      Matrix out(4, cols);
      tensor::SegmentSumInto(&out, a, segments, 4);
      return out;
    }, "SegmentSumInto");
  }
}

// ---------------------------------------------------------------------------
// FMA tier: reductions and matmuls, tolerance vs scalar
// ---------------------------------------------------------------------------

TEST_F(KernelParityTest, MatMulTolerance) {
  Rng rng(53);
  const struct { size_t m, k, n; } shapes[] = {
      {1, 1, 1}, {3, 5, 7}, {7, 9, 8}, {8, 8, 8},
      {17, 33, 9}, {64, 31, 100}, {2, 257, 3},
  };
  for (const auto& s : shapes) {
    Matrix a = Matrix::Randn(s.m, s.k, &rng);
    Matrix b = Matrix::Randn(s.k, s.n, &rng);
    Matrix bt = b.Transposed();
    ExpectClose([&] { return tensor::MatMul(a, b); }, 1e-4f, "MatMul NN");
    ExpectClose([&] { return tensor::MatMul(a, bt, false, true); }, 1e-4f,
                "MatMul NT");
    // Transposed-A forms share the banded kernels through materialization.
    Matrix at = a.Transposed();
    ExpectClose([&] { return tensor::MatMul(at, b, true, false); }, 1e-4f,
                "MatMul TN");
  }
}

TEST_F(KernelParityTest, ReductionTolerance) {
  Rng rng(59);
  for (size_t n : kLaneSizes) {
    if (n == 0) continue;
    Matrix a = Matrix::Randn(5, n, &rng);
    Matrix b = Matrix::Randn(5, n, &rng);
    ExpectClose([&] { return Matrix(1, 1, a.Sum()); }, 1e-3f, "Sum");
    ExpectClose([&] { return Matrix(1, 1, a.FrobeniusNorm()); }, 1e-4f,
                "FrobeniusNorm");
    ExpectClose([&] { return tensor::RowSums(a); }, 1e-4f, "RowSums");
    ExpectClose([&] {
      Matrix out(5, 1);
      tensor::RowNormsInto(&out, a, 1e-12f);
      return out;
    }, 1e-4f, "RowNormsInto");
    ExpectClose([&] {
      Matrix out(5, 1);
      tensor::RowwiseDotInto(&out, a, b);
      return out;
    }, 1e-3f, "RowwiseDotInto");
    ExpectClose([&] {
      Matrix out(5, n);
      tensor::RowStandardizeInto(&out, a, 1e-5f);
      return out;
    }, 1e-3f, "RowStandardizeInto");
    ExpectClose([&] {
      Matrix norms(5, 1);
      tensor::RowNormsInto(&norms, a, 1e-12f);
      Matrix out(5, n);
      tensor::DivRowsByNormsInto(&out, a, norms);
      return out;
    }, 1e-4f, "DivRowsByNormsInto");
  }
}

CsrMatrix RandomCsr(size_t rows, size_t cols, double density, Rng* rng) {
  std::vector<Triplet> trips;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng->NextBounded(1000) < static_cast<uint64_t>(density * 1000)) {
        trips.push_back({static_cast<int>(r), static_cast<int>(c),
                         static_cast<float>(rng->NextBounded(200)) / 100.0f -
                             1.0f});
      }
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, trips);
}

TEST_F(KernelParityTest, SparseTolerance) {
  Rng rng(61);
  for (size_t cols : {size_t{1}, size_t{7}, size_t{8}, size_t{17},
                      size_t{64}}) {
    CsrMatrix sp = RandomCsr(23, 19, 0.3, &rng);
    Matrix dense = Matrix::Randn(19, cols, &rng);
    Matrix dense_t = Matrix::Randn(23, cols, &rng);
    std::vector<float> x(19);
    for (float& v : x) v = static_cast<float>(rng.NextBounded(100)) / 50.0f;
    ExpectClose([&] { return tensor::SpMM(sp, dense); }, 1e-4f, "SpMM");
    ExpectClose([&] { return tensor::SpMMTransposed(sp, dense_t); }, 1e-4f,
                "SpMMTransposed");
    Differential(
        [&] {
          std::vector<float> y = tensor::SpMV(sp, x);
          Matrix out(1, y.size());
          std::memcpy(out.data(), y.data(), y.size() * sizeof(float));
          return out;
        },
        [&](const Matrix& s, const Matrix& v) {
          EXPECT_TRUE(s.AllClose(v, 1e-4f)) << "SpMV";
        });
  }
}

// ---------------------------------------------------------------------------
// Thread invariance: both ISAs must be bitwise-stable in the thread count
// ---------------------------------------------------------------------------

TEST_F(KernelParityTest, ThreadCountInvariance) {
  Rng rng(67);
  Matrix a = Matrix::Randn(33, 17, &rng);
  Matrix b = Matrix::Randn(17, 29, &rng);
  CsrMatrix sp = RandomCsr(33, 33, 0.25, &rng);
  Matrix dense = Matrix::Randn(33, 17, &rng);
  IsaGuard isa_guard;
  ThreadGuard thread_guard;
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
    SetKernelIsa(isa);
    Matrix mm_ref, spmm_ref, spmmt_ref;
    float sum_ref = 0.0f;
    for (int threads : {1, 2, 8}) {
      SetNumThreads(threads);
      Matrix mm = tensor::MatMul(a, b);
      Matrix spmm = tensor::SpMM(sp, dense);
      // SpMMTransposed switches between scatter and gather forms on the
      // thread count; under both ISAs the two forms must agree bitwise.
      Matrix spmmt = tensor::SpMMTransposed(sp, dense);
      float sum = a.Sum();
      if (threads == 1) {
        mm_ref = mm;
        spmm_ref = spmm;
        spmmt_ref = spmmt;
        sum_ref = sum;
      } else {
        EXPECT_TRUE(BitEqual(mm_ref, mm))
            << KernelIsaName(isa) << " MatMul drifted at threads=" << threads;
        EXPECT_TRUE(BitEqual(spmm_ref, spmm))
            << KernelIsaName(isa) << " SpMM drifted at threads=" << threads;
        EXPECT_TRUE(BitEqual(spmmt_ref, spmmt))
            << KernelIsaName(isa) << " SpMMTransposed drifted at threads="
            << threads;
        EXPECT_EQ(sum_ref, sum)
            << KernelIsaName(isa) << " Sum drifted at threads=" << threads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Raw primitives: remainder lanes and unaligned views
// ---------------------------------------------------------------------------

TEST_F(KernelParityTest, RawPrimitivesUnalignedAndRemainder) {
  IsaGuard guard;
  SetKernelIsa(KernelIsa::kAvx2);
  Rng rng(71);
  for (size_t n : kLaneSizes) {
    // Offset every view by one float so nothing is 32-byte aligned: the
    // kernels use unaligned loads and must not care.
    std::vector<float> abuf(n + 1), bbuf(n + 1), obuf(n + 1), rbuf(n + 1);
    for (size_t i = 0; i <= n; ++i) {
      abuf[i] = static_cast<float>(rng.NextBounded(2000)) / 500.0f - 2.0f;
      bbuf[i] = static_cast<float>(rng.NextBounded(2000)) / 500.0f - 2.0f;
    }
    const float* a = abuf.data() + 1;
    const float* b = bbuf.data() + 1;
    float* o = obuf.data() + 1;
    float* r = rbuf.data() + 1;

    tensor::simd::AddF32(o, a, b, n);
    for (size_t i = 0; i < n; ++i) r[i] = a[i] + b[i];
    EXPECT_EQ(0, std::memcmp(o, r, n * sizeof(float))) << "AddF32 n=" << n;

    tensor::simd::MulF32(o, a, b, n);
    for (size_t i = 0; i < n; ++i) r[i] = a[i] * b[i];
    EXPECT_EQ(0, std::memcmp(o, r, n * sizeof(float))) << "MulF32 n=" << n;

    tensor::simd::ScaleF32(o, a, 1.37f, n);
    for (size_t i = 0; i < n; ++i) r[i] = a[i] * 1.37f;
    EXPECT_EQ(0, std::memcmp(o, r, n * sizeof(float))) << "ScaleF32 n=" << n;

    // Reductions: double accumulators, compare to a double reference loop
    // with a tolerance covering the reassociation.
    double dot = tensor::simd::DotF64(a, b, n);
    double sum = tensor::simd::SumF64(a, n);
    double sumsq = tensor::simd::SumSqF64(a, n);
    double dot_ref = 0.0, sum_ref = 0.0, sumsq_ref = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dot_ref += static_cast<double>(a[i]) * static_cast<double>(b[i]);
      sum_ref += a[i];
      sumsq_ref += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    }
    const double tol = 1e-9 * (1.0 + static_cast<double>(n));
    EXPECT_NEAR(dot, dot_ref, tol) << "DotF64 n=" << n;
    EXPECT_NEAR(sum, sum_ref, tol) << "SumF64 n=" << n;
    EXPECT_NEAR(sumsq, sumsq_ref, tol) << "SumSqF64 n=" << n;
    double mean = n == 0 ? 0.0 : sum_ref / static_cast<double>(n);
    double ssd = tensor::simd::SumSqDiffF64(a, mean, n);
    double ssd_ref = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = static_cast<double>(a[i]) - mean;
      ssd_ref += d * d;
    }
    EXPECT_NEAR(ssd, ssd_ref, tol) << "SumSqDiffF64 n=" << n;

    // Axpy accumulates in place: o += 0.6 * b, fused — tolerance compare.
    std::memcpy(o, a, n * sizeof(float));
    tensor::simd::AxpyF32(o, b, 0.6f, n);
    for (size_t i = 0; i < n; ++i) r[i] = a[i] + 0.6f * b[i];
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(o[i], r[i], 1e-5f) << "AxpyF32 n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace ahntp
