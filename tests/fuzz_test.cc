// Randomized property tests: random autograd graphs checked against finite
// differences, sparse-algebra identities, hypergraph invariants, and
// failure injection for the IO paths.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <set>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/csv.h"
#include "common/fileio.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "graph/delta.h"
#include "graph/sharding.h"
#include "hypergraph/hypergraph.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"
#include "nn/serialization.h"
#include "serve/backend.h"
#include "serve/server.h"
#include "tensor/csr.h"
#include "test_util.h"

namespace ahntp {
namespace {

using autograd::Variable;
using tensor::CsrMatrix;
using tensor::Matrix;

// ---------------------------------------------------------------------------
// Random autograd graphs vs finite differences
// ---------------------------------------------------------------------------

/// Builds a random computation from `params` using a deterministic op
/// sequence derived from `rng`. Keeps values in well-conditioned ranges so
/// float32 finite differences stay meaningful.
Variable RandomExpression(const std::vector<Variable>& params, Rng* rng,
                          int depth) {
  Variable current = params[0];
  for (int step = 0; step < depth; ++step) {
    switch (rng->NextBounded(8)) {
      case 0:
        current = autograd::Tanh(current);
        break;
      case 1:
        current = autograd::Sigmoid(current);
        break;
      case 2:
        current = autograd::Scale(current, 0.7f);
        break;
      case 3:
        current = autograd::AddScalar(current, 0.3f);
        break;
      case 4:
        current = autograd::Add(
            current, params[rng->NextBounded(params.size())]);
        break;
      case 5:
        current = autograd::Mul(
            current, autograd::Tanh(params[rng->NextBounded(params.size())]));
        break;
      case 6:
        current = autograd::LeakyRelu(autograd::AddScalar(current, 0.15f),
                                      0.1f);
        break;
      case 7:
        current = autograd::RowL2Normalize(
            autograd::AddScalar(current, 0.8f));
        break;
    }
  }
  return autograd::ReduceMean(autograd::Mul(current, current));
}

class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, RandomGraphGradientsMatchFiniteDifferences) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1337);
  std::vector<Variable> params;
  for (int k = 0; k < 3; ++k) {
    params.push_back(
        autograd::Parameter(Matrix::Randn(3, 4, &rng, 0.0f, 0.6f)));
  }
  // The op sequence must be identical on every call: snapshot the stream.
  uint64_t expression_seed = rng.NextU64();
  ahntp::testing::ExpectGradientsClose(
      [expression_seed](const std::vector<Variable>& p) {
        Rng expression_rng(expression_seed);
        return RandomExpression(p, &expression_rng, 6);
      },
      params);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Sparse algebra identities
// ---------------------------------------------------------------------------

CsrMatrix RandomSquareSparse(size_t n, double density, Rng* rng) {
  std::vector<tensor::Triplet> triplets;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      if (rng->Bernoulli(density)) {
        triplets.push_back({static_cast<int>(r), static_cast<int>(c),
                            rng->Uniform(-1.0f, 1.0f)});
      }
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

class SparseIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseIdentityTest, AlgebraicLaws) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 99);
  CsrMatrix a = RandomSquareSparse(8, 0.3, &rng);
  CsrMatrix b = RandomSquareSparse(8, 0.3, &rng);
  CsrMatrix c = RandomSquareSparse(8, 0.3, &rng);
  // Associativity: (AB)C == A(BC).
  EXPECT_TRUE(tensor::SpGemm(tensor::SpGemm(a, b), c)
                  .AllClose(tensor::SpGemm(a, tensor::SpGemm(b, c)), 1e-3f));
  // Distributivity: A(B+C) == AB + AC.
  EXPECT_TRUE(
      tensor::SpGemm(a, tensor::SparseAdd(b, c))
          .AllClose(tensor::SparseAdd(tensor::SpGemm(a, b),
                                      tensor::SpGemm(a, c)),
                    1e-3f));
  // Transpose of a product: (AB)^T == B^T A^T.
  EXPECT_TRUE(tensor::SpGemm(a, b).Transposed().AllClose(
      tensor::SpGemm(b.Transposed(), a.Transposed()), 1e-3f));
  // Transpose is an involution.
  EXPECT_TRUE(a.Transposed().Transposed().AllClose(a));
  // Hadamard commutes.
  EXPECT_TRUE(tensor::SparseHadamard(a, b).AllClose(
      tensor::SparseHadamard(b, a)));
  // A - A == 0.
  EXPECT_EQ(tensor::SparseSub(a, a).Pruned().nnz(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseIdentityTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Hypergraph invariants on random hypergraphs
// ---------------------------------------------------------------------------

class HypergraphFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HypergraphFuzzTest, SpectralInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7);
  hypergraph::Hypergraph hg(12);
  int edges = 3 + static_cast<int>(rng.NextBounded(8));
  for (int e = 0; e < edges; ++e) {
    std::vector<int> members;
    for (int v = 0; v < 12; ++v) {
      if (rng.Bernoulli(0.3)) members.push_back(v);
    }
    if (members.size() >= 2) {
      ASSERT_TRUE(hg.AddEdge(members, rng.Uniform(0.5f, 2.0f)).ok());
    }
  }
  if (hg.num_edges() == 0) return;
  ASSERT_TRUE(hg.Validate().ok());
  // Laplacian PSD: f^T L f >= 0 for random f.
  CsrMatrix lap = hg.Laplacian();
  for (int trial = 0; trial < 5; ++trial) {
    Matrix f = Matrix::Randn(12, 1, &rng);
    Matrix lf = tensor::SpMM(lap, f);
    double quad = 0.0;
    for (size_t i = 0; i < 12; ++i) {
      quad += static_cast<double>(f.At(i, 0)) * lf.At(i, 0);
    }
    EXPECT_GE(quad, -1e-3);
  }
  // Incidence is consistent with degree bookkeeping.
  CsrMatrix h = hg.Incidence();
  EXPECT_EQ(h.nnz(), hg.TotalIncidences());
  std::vector<float> de = hg.EdgeDegrees();
  std::vector<float> col_sums = h.ColSums();
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    EXPECT_FLOAT_EQ(col_sums[e], de[e]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphFuzzTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Failure injection: IO paths
// ---------------------------------------------------------------------------

TEST(IoFailureTest, TruncatedMetaRejected) {
  std::string dir = ::testing::TempDir() + "/ahntp_bad_dataset";
  std::filesystem::create_directories(dir);
  {
    std::ofstream meta(dir + "/meta.csv");
    meta << "key,value\nname,x\nnum_users,not_a_number\n";
  }
  auto loaded = data::LoadDataset(dir);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

TEST(IoFailureTest, MissingUsersFileRejected) {
  std::string dir = ::testing::TempDir() + "/ahntp_bad_dataset2";
  std::filesystem::create_directories(dir);
  {
    std::ofstream meta(dir + "/meta.csv");
    meta << "key,value\nname,x\nnum_users,3\nnum_items,0\n"
            "num_item_categories,1\n";
  }
  auto loaded = data::LoadDataset(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checkpoint corruption fuzzing: random bit flips and truncations must
// never be accepted (v2 carries a CRC32) and must leave the destination
// parameters untouched.
// ---------------------------------------------------------------------------

class CheckpointFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointFuzzTest, RandomBitFlipAlwaysRejected) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  std::vector<Variable> saved;
  saved.push_back(autograd::Parameter(Matrix::Randn(4, 3, &rng)));
  saved.push_back(autograd::Parameter(Matrix::Randn(2, 5, &rng)));
  std::string path = ::testing::TempDir() + "/ahntp_fuzz_ckpt_" +
                     std::to_string(GetParam()) + ".ckpt";
  ASSERT_TRUE(nn::SaveParameters(saved, path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());

  for (int trial = 0; trial < 16; ++trial) {
    std::string corrupted = image;
    size_t byte = rng.NextBounded(corrupted.size());
    corrupted[byte] =
        static_cast<char>(corrupted[byte] ^ (1u << rng.NextBounded(8)));
    ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());
    std::vector<Variable> params;
    Rng fill(99);
    params.push_back(autograd::Parameter(Matrix::Randn(4, 3, &fill)));
    params.push_back(autograd::Parameter(Matrix::Randn(2, 5, &fill)));
    Rng fill2(99);
    Matrix before0 = Matrix::Randn(4, 3, &fill2);
    Matrix before1 = Matrix::Randn(2, 5, &fill2);
    Status status = nn::LoadParameters(&params, path);
    EXPECT_FALSE(status.ok())
        << "accepted a checkpoint with bit flipped in byte " << byte;
    EXPECT_TRUE(params[0].value().AllClose(before0, 0.0f));
    EXPECT_TRUE(params[1].value().AllClose(before1, 0.0f));
  }
  std::filesystem::remove(path);
}

TEST_P(CheckpointFuzzTest, RandomTruncationAlwaysRejected) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53);
  std::vector<Variable> saved;
  saved.push_back(autograd::Parameter(Matrix::Randn(3, 3, &rng)));
  std::string path = ::testing::TempDir() + "/ahntp_fuzz_trunc_" +
                     std::to_string(GetParam()) + ".ckpt";
  ASSERT_TRUE(nn::SaveParameters(saved, path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());

  for (int trial = 0; trial < 16; ++trial) {
    size_t keep = rng.NextBounded(image.size());  // always strictly shorter
    ASSERT_TRUE(WriteFileAtomic(path, image.substr(0, keep)).ok());
    std::vector<Variable> params;
    Rng fill(7);
    params.push_back(autograd::Parameter(Matrix::Randn(3, 3, &fill)));
    EXPECT_FALSE(nn::LoadParameters(&params, path).ok())
        << "accepted a checkpoint truncated to " << keep << " bytes";
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzzTest, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Mid-serve reload fuzzing: random bit flips and truncations of the
// checkpoint a live server is asked to reload must leave the server
// answering with its old weights (bitwise) and bump serve.reload_failures.
// ---------------------------------------------------------------------------

class ServeReloadFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ServeReloadFuzzTest, CorruptReloadKeepsOldWeightsServing) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 211);
  data::GeneratorConfig config;
  config.num_users = 40;
  config.num_items = 20;
  config.num_communities = 2;
  config.seed = 17;
  data::SocialDataset dataset =
      data::SocialNetworkGenerator(config).Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto graph_result = dataset.GraphFromEdges(split.train_positive);
  ASSERT_TRUE(graph_result.ok());
  graph::Digraph graph = std::move(graph_result).value();
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &graph;
  inputs.dataset = &dataset;
  inputs.hidden_dims = {8, 4};
  serve::ModelBackend::Factory factory = [inputs]() mutable {
    Rng model_rng(5);
    inputs.rng = &model_rng;
    auto created =
        core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).value();
  };
  serve::ModelBackend backend(factory, factory());

  std::string path = ::testing::TempDir() + "/ahntp_fuzz_serve_" +
                     std::to_string(GetParam()) + ".ckpt";
  ASSERT_TRUE(nn::SaveModule(*factory(), path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());

  metrics::Enable();
  metrics::Reset();

  serve::ServeOptions options;
  options.queue_capacity = 32;
  options.max_batch_size = 4;
  options.sleep_on_backoff = false;
  serve::TrustServer server(options, &backend, nullptr);
  server.Start();

  std::vector<data::TrustPair> queries;
  for (size_t i = 0; i < 8; ++i) {
    queries.push_back(split.test_pairs[i % split.test_pairs.size()]);
  }
  auto serve_wave = [&server, &queries]() {
    std::vector<std::future<serve::TrustResponse>> futures;
    for (const data::TrustPair& p : queries) {
      serve::TrustQuery q;
      q.src = p.src;
      q.dst = p.dst;
      futures.push_back(server.Submit(q));
    }
    std::vector<float> scores;
    for (auto& f : futures) {
      serve::TrustResponse r = f.get();
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      scores.push_back(r.score);
    }
    return scores;
  };

  std::vector<float> baseline = serve_wave();
  int64_t failures = 0;
  for (int trial = 0; trial < 8; ++trial) {
    std::string corrupted = image;
    if (trial % 2 == 0) {
      size_t byte = rng.NextBounded(corrupted.size());
      corrupted[byte] =
          static_cast<char>(corrupted[byte] ^ (1u << rng.NextBounded(8)));
    } else {
      corrupted.resize(rng.NextBounded(corrupted.size()));
    }
    ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());
    EXPECT_FALSE(backend.Reload(path).ok())
        << "accepted a corrupted checkpoint on trial " << trial;
    EXPECT_EQ(backend.generation(), 0);
    ++failures;
    // The live server keeps answering with the old weights, bitwise.
    EXPECT_EQ(serve_wave(), baseline);
  }
  metrics::Snapshot snapshot = metrics::Collect();
  EXPECT_EQ(snapshot.CounterValue("serve.reload_failures", 0), failures);

  // A pristine image still reloads after all that abuse.
  ASSERT_TRUE(WriteFileAtomic(path, image).ok());
  EXPECT_TRUE(backend.Reload(path).ok());
  EXPECT_EQ(backend.generation(), 1);

  server.Shutdown();
  metrics::Disable();
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeReloadFuzzTest, ::testing::Range(1, 3));

// ---------------------------------------------------------------------------
// BoundedQueue shutdown races: concurrent producers and batch consumers
// with Close() arriving mid-stream. Every accepted item must be delivered
// to exactly one consumer (no loss, no double delivery), every producer
// must see FailedPrecondition after the close, and every thread must wake
// up and join — a lost wakeup would hang the test.
// ---------------------------------------------------------------------------

class BoundedQueueCloseFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundedQueueCloseFuzzTest, CloseRacingPushPopDeliversExactlyOnce) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const size_t capacity = 1 + seed % 7;
  const int num_producers = 2 + static_cast<int>(seed % 3);
  const int num_consumers = 2 + static_cast<int>((seed / 3) % 3);
  const size_t batch_max = 1 + seed % 5;
  const int items_per_producer = 200;

  serve::BoundedQueue<int> queue(capacity);
  std::vector<std::vector<int>> accepted(num_producers);
  std::vector<std::vector<int>> delivered(num_consumers);

  std::vector<std::thread> threads;
  for (int p = 0; p < num_producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < items_per_producer; ++i) {
        int value = p * items_per_producer + i;
        for (;;) {
          Status status = queue.TryPush(value);
          if (status.ok()) {
            accepted[p].push_back(p * items_per_producer + i);
            break;
          }
          if (status.code() == StatusCode::kFailedPrecondition) return;
          // Full: back off and retry; consumers keep draining until the
          // close lands, so this always makes progress.
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < num_consumers; ++c) {
    threads.emplace_back([&, c] {
      std::vector<int> batch;
      while (queue.PopBatch(&batch, batch_max) > 0) {
        delivered[c].insert(delivered[c].end(), batch.begin(), batch.end());
        batch.clear();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50 + 37 * seed));
  queue.Close();
  for (std::thread& t : threads) t.join();

  std::vector<int> pushed;
  for (const auto& ids : accepted) {
    pushed.insert(pushed.end(), ids.begin(), ids.end());
  }
  std::vector<int> popped;
  for (const auto& ids : delivered) {
    popped.insert(popped.end(), ids.begin(), ids.end());
  }
  std::sort(pushed.begin(), pushed.end());
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(pushed, popped)
      << "every accepted item must be delivered exactly once";
  EXPECT_EQ(queue.PopBatch(&popped, 1), 0u) << "closed queue must be drained";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedQueueCloseFuzzTest,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Dataset CSV corruption: random byte mutations in any of the saved CSV
// files must never crash LoadDataset — it either loads or returns an
// error.
// ---------------------------------------------------------------------------

class DatasetFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetFuzzTest, CorruptedCsvFieldsNeverCrashLoader) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101);
  data::GeneratorConfig config;
  config.num_users = 15;
  config.num_items = 10;
  config.num_communities = 2;
  config.seed = 3;
  data::SocialDataset dataset =
      data::SocialNetworkGenerator(config).Generate();
  std::string dir = ::testing::TempDir() + "/ahntp_fuzz_ds_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(data::SaveDataset(dataset, dir).ok());

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  ASSERT_FALSE(files.empty());
  for (int trial = 0; trial < 12; ++trial) {
    const std::string& victim = files[rng.NextBounded(files.size())];
    std::string original;
    ASSERT_TRUE(ReadFileToString(victim, &original).ok());
    if (original.empty()) continue;
    std::string corrupted = original;
    // Mutate a few bytes: printable garbage, NULs, or deletions.
    for (int m = 0; m < 3; ++m) {
      size_t pos = rng.NextBounded(corrupted.size());
      switch (rng.NextBounded(3)) {
        case 0:
          corrupted[pos] = static_cast<char>('!' + rng.NextBounded(90));
          break;
        case 1:
          corrupted[pos] = '\0';
          break;
        case 2:
          corrupted.erase(pos, 1);
          break;
      }
      if (corrupted.empty()) break;
    }
    ASSERT_TRUE(WriteFileAtomic(victim, corrupted).ok());
    auto loaded = data::LoadDataset(dir);  // must not crash
    if (loaded.ok()) {
      EXPECT_TRUE(loaded->Validate().ok());
    }
    ASSERT_TRUE(WriteFileAtomic(victim, original).ok());
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetFuzzTest, ::testing::Range(1, 5));

TEST(IoFailureTest, WrongRowWidthRejected) {
  CsvTable broken;
  broken.header = {"a", "b"};
  broken.rows = {{"1", "2", "3"}};  // too wide for users.csv parsing
  std::string dir = ::testing::TempDir() + "/ahntp_bad_dataset3";
  std::filesystem::create_directories(dir);
  {
    std::ofstream meta(dir + "/meta.csv");
    meta << "key,value\nname,x\nnum_users,1\nnum_items,0\n"
            "num_item_categories,1\nattribute:hobby,2\n";
  }
  ASSERT_TRUE(WriteCsv(dir + "/users.csv", broken).ok());
  auto loaded = data::LoadDataset(dir);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Partitioner fuzz: degenerate (num_users, num_shards) requests must come
// back as InvalidArgument, never crash — and every accepted partition must
// cover each user exactly once.
// ---------------------------------------------------------------------------

class ShardingFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardingFuzzTest, DegenerateRequestsRejectedValidOnesCover) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919u + 17u);
  for (int trial = 0; trial < 200; ++trial) {
    // Bias toward the degenerate boundary: tiny populations, shard counts
    // straddling N, zero and negative values.
    size_t num_users = rng.NextBounded(8);  // 0..7, often < K
    if (rng.NextBounded(4) == 0) num_users += 1000;
    int num_shards = static_cast<int>(rng.NextBounded(12)) - 2;  // -2..9
    graph::ShardingOptions options;
    options.num_shards = num_shards;
    options.mode = rng.NextBounded(2) == 0 ? graph::ShardingMode::kContiguous
                                           : graph::ShardingMode::kHashed;
    auto sharding = graph::UserSharding::Create(num_users, options);
    bool degenerate = num_shards <= 0 || num_users == 0 ||
                      static_cast<size_t>(num_shards) > num_users;
    if (degenerate) {
      ASSERT_FALSE(sharding.ok())
          << "N=" << num_users << " K=" << num_shards;
      EXPECT_EQ(sharding.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    // Hashed partitions may legitimately reject a K that leaves a shard
    // empty; anything accepted must be a complete, disjoint cover.
    if (!sharding.ok()) {
      EXPECT_EQ(sharding.status().code(), StatusCode::kInvalidArgument);
      EXPECT_EQ(options.mode, graph::ShardingMode::kHashed);
      continue;
    }
    std::vector<int> seen(num_users, 0);
    for (int k = 0; k < num_shards; ++k) {
      const std::vector<int>& owned = sharding.value().UsersOf(k);
      EXPECT_FALSE(owned.empty()) << "accepted partitions have no empty shard";
      for (int u : owned) {
        ASSERT_GE(u, 0);
        ASSERT_LT(static_cast<size_t>(u), num_users);
        EXPECT_EQ(sharding.value().ShardOf(u), k);
        ++seen[static_cast<size_t>(u)];
      }
    }
    for (size_t u = 0; u < num_users; ++u) {
      EXPECT_EQ(seen[u], 1) << "user " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardingFuzzTest, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Int8 quantization fuzzing (DESIGN.md §15): calibration-stats ingestion
// must reject garbage without crashing, and random bit flips anywhere in a
// quantized spill block (header, scales, payload, CRC) must surface as
// Corruption — after which restoring the file lets the plan refault cleanly.
// ---------------------------------------------------------------------------

/// Small generated dataset + AHNTP predictor; the returned struct keeps the
/// backing dataset/graph/features alive alongside the model.
struct QuantFuzzFixture {
  explicit QuantFuzzFixture(uint64_t seed) {
    data::GeneratorConfig config;
    config.num_users = 40;
    config.num_items = 20;
    config.num_communities = 2;
    config.seed = 23;
    dataset = data::SocialNetworkGenerator(config).Generate();
    split = data::MakeSplit(dataset);
    auto graph_result = dataset.GraphFromEdges(split.train_positive);
    AHNTP_CHECK_OK(graph_result.status());
    graph = std::move(graph_result).value();
    features = data::BuildFeatureMatrix(dataset);
    models::ModelInputs inputs;
    inputs.features = &features;
    inputs.graph = &graph;
    inputs.dataset = &dataset;
    inputs.hidden_dims = {8, 4};
    Rng model_rng(seed);
    inputs.rng = &model_rng;
    auto created = core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    AHNTP_CHECK_OK(created.status());
    predictor = std::move(created).value();
    predictor->SetTraining(false);
  }

  std::vector<data::TrustPair> Pairs(size_t n) const {
    std::vector<data::TrustPair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(split.test_pairs[i % split.test_pairs.size()]);
    }
    return pairs;
  }

  data::SocialDataset dataset;
  data::TrustSplit split;
  graph::Digraph graph{0};
  tensor::Matrix features;
  std::unique_ptr<models::TrustPredictor> predictor;
};

class CalibrationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CalibrationFuzzTest, GarbageStatsRejectedAndPlanKeepsServing) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 601);
  QuantFuzzFixture fx(31);
  models::InferencePlan plan(fx.predictor.get());
  plan.SetPrecision(models::PlanPrecision::kInt8);
  std::vector<data::TrustPair> pairs = fx.Pairs(8);
  std::vector<float> baseline = plan.Score(pairs);
  const size_t rows = plan.calibration().rows();
  ASSERT_EQ(rows, fx.dataset.num_users);

  for (int trial = 0; trial < 60; ++trial) {
    tensor::RowCalibration calib;
    // Sizes around the true row count, plus empty and way-off.
    const size_t n = rng.NextBounded(2 * rows + 2);
    calib.absmax.resize(n);
    bool values_valid = true;
    for (float& v : calib.absmax) {
      switch (rng.NextBounded(8)) {
        case 0:
          v = std::numeric_limits<float>::quiet_NaN();
          values_valid = false;
          break;
        case 1:
          v = std::numeric_limits<float>::infinity();
          values_valid = false;
          break;
        case 2:
          v = -std::numeric_limits<float>::infinity();
          values_valid = false;
          break;
        case 3:
          v = -1.0f - static_cast<float>(rng.NextBounded(100));
          values_valid = false;
          break;
        case 4:
          v = 1e30f;  // huge but finite: legal
          break;
        case 5:
          v = 0.0f;  // all-zero row: legal
          break;
        default:
          v = static_cast<float>(rng.NextBounded(1000)) / 250.0f;
          break;
      }
    }
    const bool valid = (n == rows) && values_valid;
    Status status = plan.SetCalibration(std::move(calib));
    EXPECT_EQ(status.ok(), valid) << "trial " << trial << " n=" << n;
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    }
    // Whatever the outcome, the plan must keep producing finite scores.
    std::vector<float> probs = plan.Score(pairs);
    ASSERT_EQ(probs.size(), pairs.size());
    for (float p : probs) EXPECT_TRUE(std::isfinite(p));
  }
  EXPECT_EQ(baseline.size(), pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationFuzzTest, ::testing::Range(1, 4));

class QuantBlockFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantBlockFuzzTest, RandomBitFlipsRejectedThenRefaultCleanly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  QuantFuzzFixture fx(37);
  fx.predictor->SetInferencePrecision(models::PlanPrecision::kInt8);
  const std::string spill_dir = "fuzz_quant_spill_" +
                                std::to_string(::getpid()) + "_" +
                                std::to_string(GetParam());
  models::ShardedPlanOptions opts;
  opts.num_shards = 2;
  opts.max_resident_shards = 1;
  opts.spill_dir = spill_dir;
  fx.predictor->EnableShardedInference(opts);
  fx.predictor->WarmInferencePlan();
  std::vector<data::TrustPair> pairs = fx.Pairs(10);
  std::vector<float> baseline = fx.predictor->PredictProbabilities(pairs);

  // Snapshot every spilled block so each trial can restore it.
  std::vector<std::filesystem::path> files;
  std::vector<std::string> images;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(spill_dir)) {
    if (!entry.is_regular_file()) continue;
    files.push_back(entry.path());
    std::string image;
    ASSERT_TRUE(ReadFileToString(entry.path().string(), &image).ok());
    images.push_back(std::move(image));
  }
  ASSERT_EQ(files.size(), 2u);

  auto* plan = const_cast<models::ShardedInferencePlan*>(
      fx.predictor->sharded_plan());
  ASSERT_NE(plan->mutable_store(), nullptr);

  for (int trial = 0; trial < 24; ++trial) {
    // Flip one random bit in every block file — header, scales, payload, and
    // CRC bytes are all fair game; the expected geometry comes from the
    // sharding, so every flip must be caught.
    for (size_t f = 0; f < files.size(); ++f) {
      std::string corrupt = images[f];
      const size_t byte = rng.NextBounded(corrupt.size());
      corrupt[byte] = static_cast<char>(
          corrupt[byte] ^ (1u << rng.NextBounded(8)));
      std::ofstream out(files[f], std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    // With a residency cap of one, at least one of the two requests must
    // fault from disk and hit the corruption.
    auto r0 = plan->mutable_store()->QuantBlock(0);
    auto r1 = plan->mutable_store()->QuantBlock(1);
    ASSERT_TRUE(!r0.ok() || !r1.ok()) << "trial " << trial;
    StatusCode code =
        !r0.ok() ? r0.status().code() : r1.status().code();
    EXPECT_EQ(code, StatusCode::kCorruption) << "trial " << trial;

    // Restore the pristine blocks: the store must refault cleanly and score
    // bitwise-identically to the pre-corruption baseline.
    for (size_t f = 0; f < files.size(); ++f) {
      std::ofstream out(files[f], std::ios::binary | std::ios::trunc);
      out.write(images[f].data(),
                static_cast<std::streamsize>(images[f].size()));
    }
    auto restored = plan->Score(pairs);
    ASSERT_TRUE(restored.ok()) << "trial " << trial;
    ASSERT_EQ(restored.value().size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(restored.value()[i], baseline[i])
          << "trial " << trial << " pair " << i;
    }
  }
  fx.predictor->DisableShardedInference();
  std::filesystem::remove_all(spill_dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantBlockFuzzTest, ::testing::Range(1, 4));

// ---------------------------------------------------------------------------
// GraphDelta fuzzing: random deltas — heavy on duplicate adds, removes of
// absent edges, self-loops, and the occasional fully empty delta — applied
// to a MutableTrustGraph with a tiny compaction threshold must track a
// reference edge set exactly, with receipt bookkeeping that balances and a
// generation that bumps on every apply.
// ---------------------------------------------------------------------------

class GraphDeltaFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphDeltaFuzzTest, RandomDeltasTrackReferenceEdgeSet) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 4099);
  const int n = 12;
  graph::MutableGraphOptions options;
  options.compaction_threshold = 5;  // force frequent compactions
  auto store = graph::MutableTrustGraph::Create(n, {}, options);
  ASSERT_TRUE(store.ok());
  std::set<std::pair<int, int>> model;
  int64_t expected_generation = 0;

  for (int step = 0; step < 120; ++step) {
    graph::GraphDelta delta;
    if (rng.NextBounded(8) != 0) {  // one in eight deltas stays empty
      // The tiny vertex range makes duplicate adds, removes of absent
      // edges, and self-loops the common case, not the corner case.
      const size_t removes = rng.NextBounded(4);
      for (size_t i = 0; i < removes; ++i) {
        delta.remove_edges.push_back({static_cast<int>(rng.NextBounded(n)),
                                      static_cast<int>(rng.NextBounded(n))});
      }
      const size_t adds = rng.NextBounded(5);
      for (size_t i = 0; i < adds; ++i) {
        delta.add_edges.push_back({static_cast<int>(rng.NextBounded(n)),
                                   static_cast<int>(rng.NextBounded(n))});
      }
      if (!delta.add_edges.empty() && rng.NextBounded(3) == 0) {
        // Repeat a requested add verbatim: an in-delta duplicate.
        delta.add_edges.push_back(delta.add_edges.front());
      }
    }

    // Replay the delta against the reference set (removes before adds,
    // self-loops and duplicates ignored) while predicting the receipt.
    size_t want_removed = 0, want_removes_ignored = 0;
    for (const graph::Edge& e : delta.remove_edges) {
      if (model.erase({e.src, e.dst}) > 0) {
        ++want_removed;
      } else {
        ++want_removes_ignored;
      }
    }
    size_t want_added = 0, want_adds_ignored = 0;
    for (const graph::Edge& e : delta.add_edges) {
      if (e.src != e.dst && model.insert({e.src, e.dst}).second) {
        ++want_added;
      } else {
        ++want_adds_ignored;
      }
    }

    auto receipt = store.value().Apply(delta);
    ASSERT_TRUE(receipt.ok()) << "step " << step;
    ++expected_generation;  // every apply bumps, even an all-ignored one
    EXPECT_EQ(receipt->generation, expected_generation) << "step " << step;
    EXPECT_EQ(store.value().generation(), expected_generation);
    EXPECT_EQ(receipt->edges_added, want_added) << "step " << step;
    EXPECT_EQ(receipt->edges_removed, want_removed) << "step " << step;
    EXPECT_EQ(receipt->adds_ignored, want_adds_ignored) << "step " << step;
    EXPECT_EQ(receipt->removes_ignored, want_removes_ignored)
        << "step " << step;
    EXPECT_EQ(receipt->applied_adds.size(), receipt->edges_added);
    EXPECT_EQ(receipt->applied_removes.size(), receipt->edges_removed);

    // The store's canonical edge set must equal the reference set exactly,
    // and the overlays must stay bounded by the compaction threshold.
    std::vector<std::pair<int, int>> canonical;
    for (const graph::Edge& e : store.value().CanonicalEdges()) {
      canonical.emplace_back(e.src, e.dst);
    }
    std::vector<std::pair<int, int>> want(model.begin(), model.end());
    ASSERT_EQ(canonical, want) << "step " << step;
    EXPECT_EQ(store.value().num_edges(), model.size());
    EXPECT_LE(store.value().overlay_size(), options.compaction_threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphDeltaFuzzTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Adversarial AttackSpec fuzzing
// ---------------------------------------------------------------------------

class AttackSpecFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AttackSpecFuzzTest, RandomSpecsValidateOrGenerateCleanly) {
  // Random — frequently degenerate — specs must either be rejected by
  // Validate with InvalidArgument or produce a dataset that passes its own
  // Validate; the generator must never crash, and the two surfaces must
  // agree on which specs are acceptable.
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151);
  data::GeneratorConfig config;
  config.name = "attack_fuzz";
  config.num_users = 80;
  config.num_items = 60;
  config.num_communities = 3;
  config.avg_trust_out_degree = 5.0;
  config.avg_purchases_per_user = 4.0;
  config.seed = 17;
  data::SocialNetworkGenerator gen(config);
  const data::SocialDataset clean = gen.Generate();

  for (int trial = 0; trial < 40; ++trial) {
    data::AttackSpec spec;
    // Half the draws land in the valid range, half stress the boundaries
    // (zero counts, oversize rosters, fractions at/outside [0, 1], NaN).
    spec.sybil_rings = rng.NextBounded(5);
    spec.sybil_ring_size = rng.NextBounded(8);
    spec.sybil_targets_per_member = rng.NextBounded(100);
    spec.spam_hubs = rng.NextBounded(5);
    spec.spam_edges_per_hub = rng.NextBounded(120);
    auto fraction = [&rng]() -> double {
      switch (rng.NextBounded(6)) {
        case 0: return -1.0;                 // disabled
        case 1: return 0.0;                  // degenerate: no-op attack
        case 2: return 1.0;                  // degenerate: no clean regime
        case 3: return std::numeric_limits<double>::quiet_NaN();
        default: return 0.1 + 0.8 * rng.NextDouble();
      }
    };
    spec.camouflage_fraction = fraction();
    spec.shift_fraction = fraction();

    const Status valid = spec.Validate(config);
    auto result = gen.GenerateWithAttacks(spec);
    if (!valid.ok()) {
      EXPECT_EQ(valid.code(), StatusCode::kInvalidArgument)
          << "trial " << trial;
      ASSERT_FALSE(result.ok()) << "trial " << trial;
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(result.ok()) << "trial " << trial << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result.value().Validate().ok()) << "trial " << trial;
    // The overlay only ever appends or re-targets: the clean edge count is
    // a floor, and user/item populations never change.
    EXPECT_GE(result.value().trust_edges.size(), clean.trust_edges.size());
    EXPECT_EQ(result.value().num_users, clean.num_users);
    EXPECT_EQ(result.value().num_items, clean.num_items);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackSpecFuzzTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace ahntp
