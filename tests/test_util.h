#ifndef AHNTP_TESTS_TEST_UTIL_H_
#define AHNTP_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"

namespace ahntp::testing {

/// Checks the analytic gradients of `build` against central finite
/// differences. `build` must construct a fresh scalar (1x1) expression from
/// the given parameters on each call (define-by-run semantics).
///
/// Works in float32, so tolerances are loose: the check asserts
/// |analytic - numeric| <= abs_tol + rel_tol * |numeric|.
inline void ExpectGradientsClose(
    const std::function<autograd::Variable(
        const std::vector<autograd::Variable>&)>& build,
    std::vector<autograd::Variable> params, float epsilon = 5e-3f,
    float abs_tol = 5e-3f, float rel_tol = 5e-2f) {
  ASSERT_FALSE(params.empty());
  // Analytic gradients.
  for (auto& p : params) p.ZeroGrad();
  autograd::Variable loss = build(params);
  ASSERT_EQ(loss.rows(), 1u);
  ASSERT_EQ(loss.cols(), 1u);
  loss.Backward();
  std::vector<tensor::Matrix> analytic;
  for (auto& p : params) analytic.push_back(p.grad());

  // Numeric gradients, entry by entry.
  for (size_t k = 0; k < params.size(); ++k) {
    tensor::Matrix& value = params[k].mutable_value();
    for (size_t i = 0; i < value.size(); ++i) {
      float original = value.data()[i];
      value.data()[i] = original + epsilon;
      float plus = build(params).value().At(0, 0);
      value.data()[i] = original - epsilon;
      float minus = build(params).value().At(0, 0);
      value.data()[i] = original;
      float numeric = (plus - minus) / (2.0f * epsilon);
      float got = analytic[k].data()[i];
      EXPECT_NEAR(got, numeric, abs_tol + rel_tol * std::fabs(numeric))
          << "param " << k << " entry " << i;
    }
  }
}

}  // namespace ahntp::testing

#endif  // AHNTP_TESTS_TEST_UTIL_H_
