#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/adaptive_conv.h"
#include "core/experiment.h"
#include "core/repeated.h"
#include "data/generator.h"
#include "test_util.h"

namespace ahntp::core {
namespace {

using autograd::Variable;
using tensor::Matrix;

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, PerfectPredictions) {
  BinaryMetrics m = EvaluateBinary({0.9f, 0.8f, 0.1f, 0.2f}, {1, 1, 0, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
}

TEST(MetricsTest, AllWrongPredictions) {
  BinaryMetrics m = EvaluateBinary({0.1f, 0.9f}, {1, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.auc, 0.0);
}

TEST(MetricsTest, KnownConfusionMatrix) {
  // preds: TP, FP, TN, FN.
  BinaryMetrics m =
      EvaluateBinary({0.9f, 0.8f, 0.3f, 0.4f}, {1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(MetricsTest, AucHandlesTies) {
  BinaryMetrics m = EvaluateBinary({0.5f, 0.5f, 0.5f, 0.5f}, {1, 1, 0, 0});
  EXPECT_NEAR(m.auc, 0.5, 1e-9);
}

TEST(MetricsTest, AucIsThresholdFree) {
  // Same ranking, shifted scores: AUC unchanged, accuracy changes.
  BinaryMetrics a = EvaluateBinary({0.9f, 0.7f, 0.6f}, {1, 0, 0});
  BinaryMetrics b = EvaluateBinary({0.4f, 0.2f, 0.1f}, {1, 0, 0});
  EXPECT_DOUBLE_EQ(a.auc, b.auc);
  EXPECT_NE(a.accuracy, b.accuracy);
}

TEST(MetricsTest, BestAccuracyThresholdSeparablePoints) {
  // Positives at 0.8/0.9, negatives at 0.1/0.2: any threshold in (0.2, 0.8)
  // is perfect; the sweep returns the boundary midpoint 0.5.
  float t = BestAccuracyThreshold({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1});
  EXPECT_GT(t, 0.2f);
  EXPECT_LE(t, 0.8f);
  BinaryMetrics m =
      EvaluateBinary({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}, t);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, BestAccuracyThresholdShiftedScores) {
  // Same structure shifted low: a 0.5 threshold would score 50%, the
  // calibrated threshold recovers 100%.
  std::vector<float> probs = {0.01f, 0.02f, 0.08f, 0.09f};
  std::vector<float> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(EvaluateBinary(probs, labels, 0.5f).accuracy, 0.5);
  float t = BestAccuracyThreshold(probs, labels);
  EXPECT_DOUBLE_EQ(EvaluateBinary(probs, labels, t).accuracy, 1.0);
}

TEST(MetricsTest, BestAccuracyThresholdAllNegative) {
  // Best move is predicting everything negative: threshold above the max.
  float t = BestAccuracyThreshold({0.3f, 0.6f, 0.9f}, {0, 0, 0});
  EXPECT_GT(t, 0.9f);
}

TEST(MetricsTest, BestAccuracyThresholdHandlesTiedScores) {
  float t = BestAccuracyThreshold({0.5f, 0.5f, 0.7f, 0.7f}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(
      EvaluateBinary({0.5f, 0.5f, 0.7f, 0.7f}, {0, 0, 1, 1}, t).accuracy,
      1.0);
}

TEST(MetricsTest, ToStringContainsFields) {
  BinaryMetrics m = EvaluateBinary({0.9f}, {1});
  std::string s = m.ToString();
  EXPECT_NE(s.find("acc="), std::string::npos);
  EXPECT_NE(s.find("f1="), std::string::npos);
  EXPECT_NE(s.find("brier="), std::string::npos);
  EXPECT_NE(s.find("ece="), std::string::npos);
}

// --- Brier score + expected calibration error (hand-computed fixtures) -----

TEST(MetricsTest, BrierHandComputed) {
  // (0.9-1)^2 + (0.8-0)^2 + (0.1-0)^2 + (0.3-1)^2 = .01+.64+.01+.49 = 1.15
  BinaryMetrics m = EvaluateBinary({0.9f, 0.8f, 0.1f, 0.3f}, {1, 0, 0, 1});
  EXPECT_NEAR(m.brier, 1.15 / 4.0, 1e-6);
}

TEST(MetricsTest, BrierPerfectAndUninformed) {
  EXPECT_NEAR(EvaluateBinary({1.0f, 0.0f}, {1, 0}).brier, 0.0, 1e-12);
  // Constant 0.5 forecasts score 0.25 regardless of labels.
  EXPECT_NEAR(EvaluateBinary({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}).brier,
              0.25, 1e-7);
}

TEST(MetricsTest, EceHandComputed) {
  // Bin [0.6,0.7): probs {0.65, 0.65}, 1 positive -> |0.65 - 0.5| = 0.15,
  // weight 2/4. Bin [0.2,0.3): probs {0.25, 0.25}, 0 positive ->
  // |0.25 - 0.0| = 0.25, weight 2/4. ECE = 0.5*0.15 + 0.5*0.25 = 0.2.
  BinaryMetrics m =
      EvaluateBinary({0.65f, 0.65f, 0.25f, 0.25f}, {1, 0, 0, 0});
  EXPECT_NEAR(m.ece, 0.2, 1e-6);
}

TEST(MetricsTest, EcePerfectlyCalibratedBins) {
  // Each bin's mean confidence equals its empirical accuracy: four 0.75-bin
  // samples with three positives, four 0.25-bin samples with one positive.
  BinaryMetrics m = EvaluateBinary(
      {0.75f, 0.75f, 0.75f, 0.75f, 0.25f, 0.25f, 0.25f, 0.25f},
      {1, 1, 1, 0, 0, 0, 0, 1});
  EXPECT_NEAR(m.ece, 0.0, 1e-6);
}

TEST(MetricsTest, EceClampsOutOfRangeScores) {
  // Scores beyond [0,1] land in the edge bins instead of corrupting the
  // histogram: 1.2 clamps to 1.0 (top bin, label 1 -> perfectly
  // "calibrated"), -0.2 clamps to 0.0 (bottom bin, label 0).
  BinaryMetrics m = EvaluateBinary({1.2f, -0.2f}, {1, 0});
  EXPECT_NEAR(m.ece, 0.0, 1e-6);
  EXPECT_NEAR(m.brier, 0.0, 1e-6);
}

TEST(MetricsTest, EceOverconfidentIsPenalized) {
  // All forecasts say 0.95 but only half are positive: ECE ~= 0.45.
  BinaryMetrics m =
      EvaluateBinary({0.95f, 0.95f, 0.95f, 0.95f}, {1, 0, 1, 0});
  EXPECT_NEAR(m.ece, 0.45, 1e-6);
  EXPECT_NEAR(m.brier,
              (2 * 0.05 * 0.05 + 2 * 0.95 * 0.95) / 4.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Adaptive convolution (Eqs. 10-16)
// ---------------------------------------------------------------------------

hypergraph::Hypergraph ConvHypergraph() {
  return hypergraph::Hypergraph::FromEdges(
             6, {{0, 1, 2}, {2, 3, 4}, {4, 5}, {0, 5}})
      .value();
}

TEST(AdaptiveConvTest, OutputShape) {
  Rng rng(1);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 4, 3, &rng);
  Variable x = autograd::Constant(Matrix::Randn(6, 4, &rng));
  Variable y = conv.Forward(x);
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(AdaptiveConvTest, AttentionAndPlainVariantsDiffer) {
  Rng rng1(2), rng2(2);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv with_attn(hg, 4, 3, &rng1, /*use_attention=*/true);
  AdaptiveHypergraphConv no_attn(hg, 4, 3, &rng2, /*use_attention=*/false);
  Rng data_rng(3);
  Variable x = autograd::Constant(Matrix::Randn(6, 4, &data_rng));
  EXPECT_FALSE(
      with_attn.Forward(x).value().AllClose(no_attn.Forward(x).value()));
  // The attention variant carries the extra beta parameters.
  EXPECT_GT(with_attn.Parameters().size(), no_attn.Parameters().size());
}

TEST(AdaptiveConvTest, EdgeWeightsModulateMessages) {
  Rng rng(4);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 2, 2, &rng, /*use_attention=*/false);
  Variable x = autograd::Constant(Matrix::Randn(6, 2, &rng));
  Matrix before = conv.Forward(x).value();
  // Zeroing all trainable hyperedge weights w_e silences every message.
  auto params = conv.Parameters();
  // Parameters: [transform W, edge_weight]; find the (m x 1) one.
  for (auto& p : params) {
    if (p.cols() == 1 && p.rows() == hg.num_edges()) {
      p.mutable_value().Fill(0.0f);
    }
  }
  Matrix after = conv.Forward(x).value();
  EXPECT_GT(before.MaxAbs(), 0.0f);
  EXPECT_EQ(after.MaxAbs(), 0.0f);
}

TEST(AdaptiveConvTest, GradientsFlowThroughEdgeWeights) {
  Rng rng(5);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 3, 2, &rng);
  Variable x = autograd::Constant(Matrix::Randn(6, 3, &rng));
  conv.ZeroGrad();
  autograd::ReduceSum(autograd::Mul(conv.Forward(x), conv.Forward(x)))
      .Backward();
  bool edge_weight_touched = false;
  for (const auto& p : conv.Parameters()) {
    if (p.rows() == hg.num_edges() && p.cols() == 1 &&
        p.grad().MaxAbs() > 0.0f) {
      edge_weight_touched = true;
    }
  }
  EXPECT_TRUE(edge_weight_touched);
}

TEST(AdaptiveConvTest, GradientCheckNoAttention) {
  Rng rng(6);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 2, 2, &rng, /*use_attention=*/false);
  Matrix x = Matrix::Randn(6, 2, &rng);
  ahntp::testing::ExpectGradientsClose(
      [&conv, &x](const std::vector<Variable>&) {
        return autograd::ReduceSum(
            conv.Forward(autograd::Constant(x)));
      },
      conv.Parameters());
}

TEST(AdaptiveConvTest, MultiHeadSplitsDimensions) {
  Rng rng(31);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 4, 6, &rng, /*use_attention=*/true,
                              /*leaky_slope=*/0.2f, /*num_heads=*/3);
  EXPECT_EQ(conv.num_heads(), 3u);
  EXPECT_EQ(conv.out_features(), 6u);
  Variable x = autograd::Constant(Matrix::Randn(6, 4, &rng));
  Variable y = conv.Forward(x);
  EXPECT_EQ(y.cols(), 6u);
  // Head-averaged attention still sums to 1 per vertex segment.
  const Matrix& attention = conv.last_attention();
  std::vector<double> per_vertex(6, 0.0);
  for (size_t p = 0; p < conv.pairs().vertex.size(); ++p) {
    per_vertex[static_cast<size_t>(conv.pairs().vertex[p])] +=
        attention.At(p, 0);
  }
  for (size_t v = 0; v < 6; ++v) {
    EXPECT_NEAR(per_vertex[v], 1.0, 1e-4);
  }
}

TEST(AdaptiveConvTest, MultiHeadGradientCheck) {
  Rng rng(32);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 2, 4, &rng, /*use_attention=*/true,
                              /*leaky_slope=*/0.2f, /*num_heads=*/2);
  Matrix x = Matrix::Randn(6, 2, &rng);
  ahntp::testing::ExpectGradientsClose(
      [&conv, &x](const std::vector<Variable>&) {
        return autograd::ReduceSum(conv.Forward(autograd::Constant(x)));
      },
      conv.Parameters());
}

TEST(AdaptiveConvDeathTest, HeadsMustDivideWidth) {
  Rng rng(33);
  hypergraph::Hypergraph hg = ConvHypergraph();
  EXPECT_DEATH(AdaptiveHypergraphConv(hg, 4, 5, &rng, true, 0.2f, 2),
               "divide evenly");
}

TEST(AdaptiveConvTest, GradientCheckWithAttention) {
  Rng rng(7);
  hypergraph::Hypergraph hg = ConvHypergraph();
  AdaptiveHypergraphConv conv(hg, 2, 2, &rng, /*use_attention=*/true);
  Matrix x = Matrix::Randn(6, 2, &rng);
  ahntp::testing::ExpectGradientsClose(
      [&conv, &x](const std::vector<Variable>&) {
        return autograd::ReduceSum(
            conv.Forward(autograd::Constant(x)));
      },
      conv.Parameters());
}

// ---------------------------------------------------------------------------
// AHNTP model structure
// ---------------------------------------------------------------------------

class CoreFixture {
 public:
  CoreFixture() : rng_(17) {
    data::GeneratorConfig config;
    config.num_users = 50;
    config.num_items = 60;
    config.num_communities = 3;
    config.avg_trust_out_degree = 5.0;
    config.avg_purchases_per_user = 5.0;
    config.seed = 11;
    dataset_ = data::SocialNetworkGenerator(config).Generate();
    split_ = data::MakeSplit(dataset_);
    graph_ = dataset_.GraphFromEdges(split_.train_positive).value();
    features_ = data::BuildFeatureMatrix(dataset_);
    inputs_.features = &features_;
    inputs_.graph = &graph_;
    inputs_.dataset = &dataset_;
    inputs_.hidden_dims = {12, 6};
    inputs_.dropout = 0.0f;
    inputs_.rng = &rng_;
  }
  const models::ModelInputs& inputs() const { return inputs_; }
  const data::SocialDataset& dataset() const { return dataset_; }
  const data::TrustSplit& split() const { return split_; }
  Rng* rng() { return &rng_; }

 private:
  Rng rng_;
  data::SocialDataset dataset_;
  data::TrustSplit split_;
  graph::Digraph graph_{0};
  tensor::Matrix features_;
  models::ModelInputs inputs_;
};

CoreFixture& Fixture() {
  static CoreFixture* fixture = new CoreFixture();
  return *fixture;
}

TEST(AhntpModelTest, EmbeddingConcatenatesBranches) {
  AhntpConfig config;
  config.hidden_dims = {12, 6};
  AhntpModel model(Fixture().inputs(), config);
  EXPECT_EQ(model.embedding_dim(), 12u);  // 2 x 6
  Variable emb = model.EncodeUsers();
  EXPECT_EQ(emb.rows(), 50u);
  EXPECT_EQ(emb.cols(), 12u);
}

TEST(AhntpModelTest, HypergroupsCoverAllFourTypes) {
  AhntpConfig config;
  config.hidden_dims = {12, 6};
  config.social_top_k = 3;
  config.multi_hop = 2;
  AhntpModel model(Fixture().inputs(), config);
  const auto& ds = Fixture().dataset();
  // Node level: one social hyperedge per user + attribute groups.
  EXPECT_GT(model.node_hypergraph().num_edges(), ds.num_users);
  // Structure level: pairwise edges + one multi-hop ball per user per level.
  EXPECT_GT(model.structure_hypergraph().num_edges(), 2 * ds.num_users);
  EXPECT_EQ(model.combined_hypergraph().num_edges(),
            model.node_hypergraph().num_edges() +
                model.structure_hypergraph().num_edges());
  EXPECT_TRUE(model.combined_hypergraph().Validate().ok());
  EXPECT_EQ(model.influence_scores().size(), ds.num_users);
}

TEST(AhntpModelTest, MprAblationChangesInfluence) {
  AhntpConfig with;
  with.hidden_dims = {12, 6};
  AhntpConfig without = with;
  without.use_mpr = false;
  AhntpModel a(Fixture().inputs(), with);
  AhntpModel b(Fixture().inputs(), without);
  // Same size, different scores (motif term reweights the ranking).
  ASSERT_EQ(a.influence_scores().size(), b.influence_scores().size());
  double diff = 0.0;
  for (size_t i = 0; i < a.influence_scores().size(); ++i) {
    diff += std::fabs(a.influence_scores()[i] - b.influence_scores()[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(AhntpModelTest, LayerCountFollowsHiddenDims) {
  for (size_t layers : {1u, 3u, 5u}) {
    AhntpConfig config;
    config.hidden_dims.assign(layers, 8);
    AhntpModel model(Fixture().inputs(), config);
    Variable emb = model.EncodeUsers();
    EXPECT_EQ(emb.cols(), 16u);  // 2 branches x 8
  }
}

TEST(AhntpModelTest, MultiHeadConfigRuns) {
  AhntpConfig config;
  config.hidden_dims = {12, 6};
  config.attention_heads = 2;
  AhntpModel model(Fixture().inputs(), config);
  Variable emb = model.EncodeUsers();
  EXPECT_EQ(emb.cols(), 12u);
}

TEST(AhntpModelTest, ExplainUserRanksIncidentHyperedges) {
  AhntpConfig config;
  config.hidden_dims = {12, 6};
  AhntpModel model(Fixture().inputs(), config);
  auto influences = model.ExplainUser(0, 4);
  ASSERT_FALSE(influences.empty());
  ASSERT_LE(influences.size(), 4u);
  float prev = 2.0f;
  for (const auto& info : influences) {
    // Sorted descending, valid attention, the user belongs to every edge.
    EXPECT_LE(info.attention, prev);
    prev = info.attention;
    EXPECT_GE(info.attention, 0.0f);
    EXPECT_TRUE(info.branch == "node" || info.branch == "structure");
    EXPECT_TRUE(info.source == "social-influence" ||
                info.source == "attribute" || info.source == "pairwise" ||
                info.source == "multi-hop");
    EXPECT_NE(std::find(info.members.begin(), info.members.end(), 0),
              info.members.end());
  }
}

TEST(AhntpModelTest, ExplainUserRequiresAttention) {
  AhntpConfig config;
  config.hidden_dims = {12, 6};
  config.use_attention = false;
  AhntpModel model(Fixture().inputs(), config);
  EXPECT_DEATH(model.ExplainUser(0), "attention");
}

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

TEST(TrainerTest, LossDecreases) {
  CoreFixture& fixture = Fixture();
  Rng rng(21);
  auto spec = CreateEncoder("AHNTP", fixture.inputs(), AhntpConfig{});
  ASSERT_TRUE(spec.ok());
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  TrainerConfig config;
  config.epochs = 15;
  config.learning_rate = 5e-3f;
  Trainer trainer(config);
  TrainResult result =
      trainer.Fit(&predictor, fixture.split().train_pairs).value();
  ASSERT_EQ(result.history.size(), 15u);
  EXPECT_LT(result.history.back().loss, result.history.front().loss);
  EXPECT_GT(result.train_seconds, 0.0);
}

TEST(TrainerTest, ContrastiveTermReportedOnlyWhenEnabled) {
  CoreFixture& fixture = Fixture();
  Rng rng(22);
  auto spec = CreateEncoder("AHNTP", fixture.inputs(), AhntpConfig{});
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  TrainerConfig config;
  config.epochs = 2;
  config.use_contrastive = false;
  Trainer trainer(config);
  TrainResult result =
      trainer.Fit(&predictor, fixture.split().train_pairs).value();
  EXPECT_EQ(result.history.back().contrastive_loss, 0.0);
}

TEST(TrainerTest, MiniBatchesMatchFullBatchEpochStructure) {
  CoreFixture& fixture = Fixture();
  Rng rng(23);
  auto spec = CreateEncoder("SGC", fixture.inputs(), AhntpConfig{});
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  TrainerConfig config;
  config.epochs = 3;
  config.batch_size = 32;
  Trainer trainer(config);
  TrainResult result =
      trainer.Fit(&predictor, fixture.split().train_pairs).value();
  EXPECT_EQ(result.history.size(), 3u);
}

TEST(TrainerTest, EarlyStoppingStopsAndRestores) {
  CoreFixture& fixture = Fixture();
  Rng rng(25);
  auto spec = CreateEncoder("SGC", fixture.inputs(), AhntpConfig{});
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  TrainerConfig config;
  config.epochs = 200;
  config.patience = 2;
  config.eval_every = 2;
  Trainer trainer(config);
  // Use a slice of train pairs as a stand-in validation set.
  std::vector<data::TrustPair> val(
      fixture.split().train_pairs.begin(),
      fixture.split().train_pairs.begin() + 40);
  std::vector<data::TrustPair> fit(fixture.split().train_pairs.begin() + 40,
                                   fixture.split().train_pairs.end());
  TrainResult result = trainer.Fit(&predictor, fit, val).value();
  // It must either converge early or run to the cap; either way the best
  // epoch is recorded and validation AUC is meaningful.
  EXPECT_GE(result.best_validation_auc, 0.4);
  EXPECT_LE(result.best_epoch,
            static_cast<int>(result.history.size()) - 1);
}

TEST(TrainerTest, NoValidationMeansNoEarlyStop) {
  CoreFixture& fixture = Fixture();
  Rng rng(26);
  auto spec = CreateEncoder("SGC", fixture.inputs(), AhntpConfig{});
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  TrainerConfig config;
  config.epochs = 7;
  config.patience = 1;
  Trainer trainer(config);
  TrainResult result =
      trainer.Fit(&predictor, fixture.split().train_pairs).value();
  EXPECT_EQ(result.history.size(), 7u);  // ran to the cap
  EXPECT_EQ(result.best_validation_auc, 0.0);
}

TEST(TrainerTest, RegularizerPathRuns) {
  CoreFixture& fixture = Fixture();
  Rng rng(24);
  auto spec = CreateEncoder("AHNTP", fixture.inputs(), AhntpConfig{});
  auto* ahntp = dynamic_cast<AhntpModel*>(spec->encoder.get());
  ASSERT_NE(ahntp, nullptr);
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  TrainerConfig config;
  config.epochs = 2;
  config.regularizer_weight = 0.01f;
  config.regularizer_hypergraph = &ahntp->combined_hypergraph();
  Trainer trainer(config);
  TrainResult result =
      trainer.Fit(&predictor, fixture.split().train_pairs).value();
  EXPECT_EQ(result.history.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

// ---------------------------------------------------------------------------
// Experiment harness end-to-end (every model on a tiny dataset)
// ---------------------------------------------------------------------------

class ExperimentSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExperimentSmokeTest, RunsEndToEnd) {
  CoreFixture& fixture = Fixture();
  ExperimentConfig config;
  config.model = GetParam();
  config.hidden_dims = {12, 6};
  config.trainer.epochs = 3;
  auto result = RunExperiment(fixture.dataset(), config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->model, GetParam());
  EXPECT_GT(result->num_parameters, 0u);
  EXPECT_GT(result->test.num_samples, 0u);
  EXPECT_GE(result->test.accuracy, 0.0);
  EXPECT_LE(result->test.accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ExperimentSmokeTest,
    ::testing::Values("GAT", "SGC", "Guardian", "AtNE-Trust", "KGTrust",
                      "UniGCN", "UniGAT", "HGNN+", "MF", "AHNTP", "AHNTP-nompr",
                      "AHNTP-noatt", "AHNTP-nocon"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RepeatedTest, AggregatesAcrossSeeds) {
  ExperimentConfig config;
  config.model = "SGC";
  config.hidden_dims = {12, 6};
  config.trainer.epochs = 3;
  auto result = RunRepeatedExperiment(Fixture().dataset(), config, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_runs, 3);
  EXPECT_GT(result->accuracy.mean, 0.0);
  EXPECT_GE(result->accuracy.stddev, 0.0);
  EXPECT_GT(result->total_train_seconds, 0.0);
  std::string text = result->ToString();
  EXPECT_NE(text.find("SGC over 3 runs"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

TEST(RepeatedTest, SingleRunHasZeroStddev) {
  ExperimentConfig config;
  config.model = "SGC";
  config.hidden_dims = {12, 6};
  config.trainer.epochs = 2;
  auto result = RunRepeatedExperiment(Fixture().dataset(), config, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->accuracy.stddev, 0.0);
}

TEST(RepeatedTest, CrossValidationRotatesSplits) {
  ExperimentConfig config;
  config.model = "SGC";
  config.hidden_dims = {12, 6};
  config.trainer.epochs = 2;
  auto result = RunCrossValidation(Fixture().dataset(), config, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_runs, 3);
  // Different folds = different test slices: metrics should genuinely vary.
  EXPECT_GT(result->accuracy.stddev, 0.0);
}

TEST(RepeatedTest, PropagatesModelErrors) {
  ExperimentConfig config;
  config.model = "NotAModel";
  auto result = RunRepeatedExperiment(Fixture().dataset(), config, 2);
  EXPECT_FALSE(result.ok());
}

TEST(ExperimentTest, UnknownModelPropagatesError) {
  ExperimentConfig config;
  config.model = "Nope";
  auto result = RunExperiment(Fixture().dataset(), config);
  EXPECT_FALSE(result.ok());
}

TEST(ExperimentTest, LearnsAboveChanceWithEnoughEpochs) {
  ExperimentConfig config;
  config.model = "AHNTP";
  config.hidden_dims = {16, 8};
  config.trainer.epochs = 40;
  auto result = RunExperiment(Fixture().dataset(), config);
  ASSERT_TRUE(result.ok());
  // Balanced test set: chance is 0.5 accuracy / 0.5 AUC.
  EXPECT_GT(result->test.auc, 0.6);
}

TEST(ExperimentTest, DeterministicAcrossCalls) {
  ExperimentConfig config;
  config.model = "SGC";
  config.hidden_dims = {12, 6};
  config.trainer.epochs = 4;
  auto a = RunExperiment(Fixture().dataset(), config);
  auto b = RunExperiment(Fixture().dataset(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->test.accuracy, b->test.accuracy);
  EXPECT_DOUBLE_EQ(a->test.auc, b->test.auc);
  EXPECT_EQ(a->threshold, b->threshold);
}

TEST(ExperimentTest, ModelSeedChangesResult) {
  ExperimentConfig config;
  config.model = "SGC";
  config.hidden_dims = {12, 6};
  config.trainer.epochs = 4;
  auto a = RunExperiment(Fixture().dataset(), config);
  config.model_seed = 99;
  auto b = RunExperiment(Fixture().dataset(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different init: the calibrated operating point should move.
  EXPECT_NE(a->threshold, b->threshold);
}

TEST(ExperimentTest, TemporalSplitRequiresTimes) {
  data::SocialDataset untimed = Fixture().dataset();
  untimed.trust_edge_times.clear();
  ExperimentConfig config;
  config.model = "SGC";
  config.temporal_split = true;
  config.trainer.epochs = 2;
  auto result = RunExperiment(untimed, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ahntp::core
