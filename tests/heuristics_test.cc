#include "models/heuristics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "data/generator.h"

namespace ahntp::models {
namespace {

graph::Digraph MakeGraph(size_t n, std::vector<graph::Edge> edges) {
  auto g = graph::Digraph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.value();
}

TEST(HeuristicNamesTest, RoundTrip) {
  for (Heuristic h :
       {Heuristic::kCommonNeighbors, Heuristic::kJaccard,
        Heuristic::kAdamicAdar, Heuristic::kKatz, Heuristic::kPropagation}) {
    auto parsed = ParseHeuristic(HeuristicName(h));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), h);
  }
  EXPECT_FALSE(ParseHeuristic("NotAHeuristic").ok());
}

TEST(CommonNeighborsTest, CountsSharedNeighbors) {
  // 0 and 1 share neighbours 2 and 3 (via any edge direction).
  graph::Digraph g =
      MakeGraph(5, {{0, 2}, {1, 2}, {3, 0}, {3, 1}, {0, 4}});
  EXPECT_DOUBLE_EQ(
      HeuristicScore(g, Heuristic::kCommonNeighbors, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(
      HeuristicScore(g, Heuristic::kCommonNeighbors, 2, 4), 1.0);  // share 0
}

TEST(JaccardTest, NormalizedOverlap) {
  graph::Digraph g = MakeGraph(5, {{0, 2}, {1, 2}, {0, 3}, {1, 4}});
  // N(0) = {2,3}, N(1) = {2,4}: intersection 1, union 3.
  EXPECT_NEAR(HeuristicScore(g, Heuristic::kJaccard, 0, 1), 1.0 / 3.0, 1e-9);
  // Identical neighbourhoods give 1.
  graph::Digraph h = MakeGraph(3, {{0, 2}, {1, 2}});
  EXPECT_DOUBLE_EQ(HeuristicScore(h, Heuristic::kJaccard, 0, 1), 1.0);
}

TEST(AdamicAdarTest, RareNeighborsWeighMore) {
  // w=2 is shared and has low degree; w=3 is shared and is a hub.
  graph::Digraph g = MakeGraph(8, {{0, 2}, {1, 2},                    // rare
                                   {0, 3}, {1, 3}, {4, 3}, {5, 3},    // hub
                                   {6, 3}, {7, 3}});
  double rare_only = 1.0 / std::log(1.0 + 2.0);
  double score = HeuristicScore(g, Heuristic::kAdamicAdar, 0, 1);
  EXPECT_GT(score, rare_only);  // hub still contributes something
  // The rare neighbour's term dominates the hub's term (hub degree 6:
  // neighbours {0,1,4,5,6,7}).
  double hub_term = 1.0 / std::log(1.0 + 6.0);
  EXPECT_NEAR(score, rare_only + hub_term, 1e-6);
}

TEST(KatzTest, ShorterIndirectPathScoresHigher) {
  // 0 -> 2 -> 1 (two hops) and 0 -> 3 -> 4 -> 5 (three hops).
  graph::Digraph g =
      MakeGraph(6, {{0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 5}});
  HeuristicOptions options;
  options.katz_beta = 0.1;
  EXPECT_NEAR(HeuristicScore(g, Heuristic::kKatz, 0, 1, options), 0.01,
              1e-9);
  EXPECT_NEAR(HeuristicScore(g, Heuristic::kKatz, 0, 5, options), 0.001,
              1e-9);
  EXPECT_DOUBLE_EQ(HeuristicScore(g, Heuristic::kKatz, 5, 0, options), 0.0);
}

TEST(KatzTest, DirectEdgeExcluded) {
  // Only a direct edge: the link-prediction score must be 0, but adding an
  // alternative indirect path brings it back.
  graph::Digraph direct_only = MakeGraph(2, {{0, 1}});
  HeuristicOptions options;
  options.katz_beta = 0.1;
  EXPECT_DOUBLE_EQ(
      HeuristicScore(direct_only, Heuristic::kKatz, 0, 1, options), 0.0);
  graph::Digraph with_detour = MakeGraph(3, {{0, 1}, {0, 2}, {2, 1}});
  EXPECT_NEAR(HeuristicScore(with_detour, Heuristic::kKatz, 0, 1, options),
              0.01, 1e-9);
}

TEST(KatzTest, CountsParallelPaths) {
  // Two length-2 paths 0 -> {1,2} -> 3.
  graph::Digraph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  HeuristicOptions options;
  options.katz_beta = 0.1;
  EXPECT_NEAR(HeuristicScore(g, Heuristic::kKatz, 0, 3, options), 0.02,
              1e-9);
}

TEST(PropagationTest, DecaysWithDistance) {
  graph::Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  HeuristicOptions options;
  options.propagation_decay = 0.5;
  options.max_path_length = 3;
  EXPECT_DOUBLE_EQ(HeuristicScore(g, Heuristic::kPropagation, 0, 2, options),
                   0.25);
  EXPECT_DOUBLE_EQ(HeuristicScore(g, Heuristic::kPropagation, 0, 3, options),
                   0.125);
  // Unreachable within the bound or against edge direction: zero.
  EXPECT_DOUBLE_EQ(HeuristicScore(g, Heuristic::kPropagation, 3, 0, options),
                   0.0);
  options.max_path_length = 2;
  EXPECT_DOUBLE_EQ(HeuristicScore(g, Heuristic::kPropagation, 0, 3, options),
                   0.0);
}

TEST(PropagationTest, DirectEdgeExcluded) {
  HeuristicOptions options;
  options.propagation_decay = 0.5;
  // Direct edge only: score 0 (the observed edge must not explain itself).
  graph::Digraph direct_only = MakeGraph(2, {{0, 1}});
  EXPECT_DOUBLE_EQ(
      HeuristicScore(direct_only, Heuristic::kPropagation, 0, 1, options),
      0.0);
  // Direct edge + a two-hop detour: the detour carries the score.
  graph::Digraph with_detour = MakeGraph(3, {{0, 1}, {0, 2}, {2, 1}});
  EXPECT_DOUBLE_EQ(
      HeuristicScore(with_detour, Heuristic::kPropagation, 0, 1, options),
      0.25);
}

TEST(HeuristicProbabilitiesTest, MonotoneSquashIntoUnitInterval) {
  graph::Digraph g = MakeGraph(4, {{0, 2}, {1, 2}, {0, 3}, {1, 3}});
  std::vector<data::TrustPair> pairs = {{0, 1, 1.0f}, {2, 3, 0.0f}};
  auto probs =
      HeuristicProbabilities(g, Heuristic::kCommonNeighbors, pairs);
  ASSERT_EQ(probs.size(), 2u);
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
  // 0/1 share two neighbours; 2/3 share two neighbours too (0 and 1).
  EXPECT_NEAR(probs[0], 2.0f / 3.0f, 1e-5f);
}

TEST(HeuristicExperimentTest, RunsThroughHarnessAndBeatsCoinFlip) {
  data::GeneratorConfig config;
  config.num_users = 100;
  config.num_items = 50;
  config.num_communities = 4;
  config.avg_trust_out_degree = 6.0;
  config.avg_purchases_per_user = 4.0;
  config.seed = 3;
  data::SocialDataset ds = data::SocialNetworkGenerator(config).Generate();
  for (const char* name : {"CommonNeighbors", "Jaccard", "AdamicAdar",
                           "Katz", "Propagation"}) {
    core::ExperimentConfig experiment;
    experiment.model = name;
    auto result = core::RunExperiment(ds, experiment);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_GT(result->test.auc, 0.55) << name;
    EXPECT_EQ(result->model, name);
  }
}

}  // namespace
}  // namespace ahntp::models
