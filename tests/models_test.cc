#include <memory>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/graph_ops.h"
#include "models/trust_predictor.h"
#include "nn/losses.h"
#include "nn/optimizer.h"

namespace ahntp::models {
namespace {

/// Shared tiny fixture: a generated dataset with its training inputs.
class ModelFixture {
 public:
  ModelFixture() : rng_(99) {
    data::GeneratorConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.num_communities = 3;
    config.avg_trust_out_degree = 5.0;
    config.avg_purchases_per_user = 6.0;
    config.seed = 5;
    dataset_ = data::SocialNetworkGenerator(config).Generate();
    split_ = data::MakeSplit(dataset_);
    graph_ = dataset_.GraphFromEdges(split_.train_positive).value();
    features_ = data::BuildFeatureMatrix(dataset_);

    hypergraph::Hypergraph attr = hypergraph::BuildAttributeHypergroup(
        dataset_.num_users, dataset_.attributes);
    hypergraph::Hypergraph pairwise =
        hypergraph::BuildPairwiseHypergroup(graph_);
    hypergraph_ = hypergraph::Hypergraph::Concat(attr, pairwise);

    inputs_.features = &features_;
    inputs_.graph = &graph_;
    inputs_.dataset = &dataset_;
    inputs_.hypergraph = &hypergraph_;
    inputs_.hidden_dims = {16, 8};
    inputs_.dropout = 0.0f;
    inputs_.rng = &rng_;
  }

  const ModelInputs& inputs() const { return inputs_; }
  const data::TrustSplit& split() const { return split_; }
  Rng* rng() { return &rng_; }

 private:
  Rng rng_;
  data::SocialDataset dataset_;
  data::TrustSplit split_;
  graph::Digraph graph_{0};
  tensor::Matrix features_;
  hypergraph::Hypergraph hypergraph_{0};
  ModelInputs inputs_;
};

ModelFixture& Fixture() {
  static ModelFixture* fixture = new ModelFixture();
  return *fixture;
}

// ---------------------------------------------------------------------------
// Graph operators
// ---------------------------------------------------------------------------

TEST(GraphOpsTest, SymmetricNormalizedAdjacencyIsSymmetric) {
  auto g = graph::Digraph::FromEdges(4, {{0, 1}, {1, 2}, {3, 0}}).value();
  tensor::CsrMatrix a = SymmetricNormalizedAdjacency(g);
  EXPECT_TRUE(a.AllClose(a.Transposed(), 1e-5f));
  // Self-loops present: diagonal is nonzero.
  for (size_t i = 0; i < 4; ++i) EXPECT_GT(a.At(i, i), 0.0f);
}

TEST(GraphOpsTest, DirectedNormalizedAdjacencyRowStochastic) {
  auto g = graph::Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}}).value();
  for (bool incoming : {false, true}) {
    tensor::CsrMatrix a = DirectedNormalizedAdjacency(g, incoming);
    for (float s : a.RowSums()) EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(GraphOpsTest, AttentionEdgesIncludeSelfLoops) {
  auto g = graph::Digraph::FromEdges(3, {{0, 1}}).value();
  AttentionEdges edges = BuildAttentionEdges(g);
  // 3 self-loops + (0,1) in both aggregation directions.
  EXPECT_EQ(edges.dst.size(), 5u);
  int self_loops = 0;
  for (size_t i = 0; i < edges.dst.size(); ++i) {
    if (edges.dst[i] == edges.src[i]) ++self_loops;
  }
  EXPECT_EQ(self_loops, 3);
}

// ---------------------------------------------------------------------------
// Every encoder: shape, parameters, gradient flow (parameterized).
// ---------------------------------------------------------------------------

class EncoderContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EncoderContractTest, ShapeParametersAndGradients) {
  ModelFixture& fixture = Fixture();
  auto spec = core::CreateEncoder(GetParam(), fixture.inputs(),
                                  core::AhntpConfig{});
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::shared_ptr<Encoder> encoder = spec->encoder;

  autograd::Variable emb = encoder->EncodeUsers();
  EXPECT_EQ(emb.rows(), 60u);
  EXPECT_EQ(emb.cols(), encoder->embedding_dim());
  EXPECT_GT(encoder->NumParameters(), 0u);
  EXPECT_FALSE(encoder->name().empty());

  // Every parameter must receive some gradient from a generic loss.
  encoder->ZeroGrad();
  autograd::Variable loss = autograd::ReduceMean(
      autograd::Mul(emb, emb));
  loss.Backward();
  size_t touched = 0;
  for (const auto& p : encoder->Parameters()) {
    if (p.grad().MaxAbs() > 0.0f) ++touched;
  }
  // ReLU dead units can zero a few, but most parameters must be reached.
  EXPECT_GE(touched, encoder->Parameters().size() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EncoderContractTest,
    ::testing::Values("GAT", "SGC", "Guardian", "AtNE-Trust", "KGTrust",
                      "UniGCN", "UniGAT", "HGNN+", "MF", "AHNTP", "AHNTP-nompr",
                      "AHNTP-noatt"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ModelZooTest, UnknownModelIsNotFound) {
  auto spec = core::CreateEncoder("NoSuchModel", Fixture().inputs(),
                                  core::AhntpConfig{});
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(ModelZooTest, HypergraphRequirementFlags) {
  EXPECT_TRUE(core::ModelNeedsHypergraph("UniGCN"));
  EXPECT_TRUE(core::ModelNeedsHypergraph("HGNN+"));
  EXPECT_FALSE(core::ModelNeedsHypergraph("AHNTP"));  // builds its own
  EXPECT_FALSE(core::ModelNeedsHypergraph("GAT"));
}

TEST(ModelZooTest, ContrastiveFlagOnlyForFullAhntp) {
  ModelFixture& fixture = Fixture();
  core::AhntpConfig config;
  EXPECT_TRUE(core::CreateEncoder("AHNTP", fixture.inputs(), config)
                  ->use_contrastive);
  EXPECT_FALSE(core::CreateEncoder("AHNTP-nocon", fixture.inputs(), config)
                   ->use_contrastive);
  EXPECT_FALSE(
      core::CreateEncoder("SGC", fixture.inputs(), config)->use_contrastive);
}

TEST(AtneTrustTest, ExposesReconstructionAuxLoss) {
  ModelFixture& fixture = Fixture();
  auto spec = core::CreateEncoder("AtNE-Trust", fixture.inputs(),
                                  core::AhntpConfig{});
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->encoder->HasAuxLoss());
  spec->encoder->EncodeUsers();
  autograd::Variable aux = spec->encoder->AuxLoss();
  EXPECT_EQ(aux.rows(), 1u);
  EXPECT_GT(aux.value().At(0, 0), 0.0f);  // untrained: reconstruction error
}

// ---------------------------------------------------------------------------
// TrustPredictor head
// ---------------------------------------------------------------------------

TEST(TrustPredictorTest, OutputsProbabilitiesInRange) {
  ModelFixture& fixture = Fixture();
  Rng rng(3);
  auto spec =
      core::CreateEncoder("SGC", fixture.inputs(), core::AhntpConfig{});
  ASSERT_TRUE(spec.ok());
  TrustPredictor predictor(spec->encoder, TrustPredictorConfig{}, &rng);
  std::vector<data::TrustPair> pairs(
      fixture.split().test_pairs.begin(),
      fixture.split().test_pairs.begin() + 10);
  std::vector<float> probs = predictor.PredictProbabilities(pairs);
  ASSERT_EQ(probs.size(), 10u);
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(TrustPredictorTest, CosineMatchesProbabilityMapping) {
  ModelFixture& fixture = Fixture();
  Rng rng(4);
  auto spec =
      core::CreateEncoder("SGC", fixture.inputs(), core::AhntpConfig{});
  TrustPredictor predictor(spec->encoder, TrustPredictorConfig{}, &rng);
  predictor.SetTraining(false);
  std::vector<data::TrustPair> pairs(
      fixture.split().test_pairs.begin(),
      fixture.split().test_pairs.begin() + 5);
  auto out = predictor.Forward(pairs);
  for (size_t i = 0; i < 5; ++i) {
    float cos = out.cosine.value().At(i, 0);
    float prob = out.probability.value().At(i, 0);
    EXPECT_NEAR(prob, (1.0f + cos) / 2.0f, 1e-5f);
    EXPECT_GE(cos, -1.0f - 1e-5f);
    EXPECT_LE(cos, 1.0f + 1e-5f);
  }
}

TEST(TrustPredictorTest, TrainingImprovesLossOnTinyProblem) {
  ModelFixture& fixture = Fixture();
  Rng rng(5);
  auto spec =
      core::CreateEncoder("SGC", fixture.inputs(), core::AhntpConfig{});
  TrustPredictor predictor(spec->encoder, TrustPredictorConfig{}, &rng);
  nn::Adam adam(predictor.Parameters(), 0.01f);
  std::vector<data::TrustPair> batch = fixture.split().train_pairs;
  std::vector<float> labels(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) labels[i] = batch[i].label;

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    auto out = predictor.Forward(batch);
    autograd::Variable loss = nn::BinaryCrossEntropy(out.probability, labels);
    if (step == 0) first_loss = loss.value().At(0, 0);
    last_loss = loss.value().At(0, 0);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.9f);
}

}  // namespace
}  // namespace ahntp::models
