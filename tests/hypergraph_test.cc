#include "hypergraph/hypergraph.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ahntp::hypergraph {
namespace {

Hypergraph Small() {
  auto hg = Hypergraph::FromEdges(5, {{0, 1, 2}, {2, 3}, {3, 4}},
                                  {1.0f, 2.0f, 1.0f});
  EXPECT_TRUE(hg.ok());
  return hg.value();
}

TEST(HypergraphTest, BasicCounts) {
  Hypergraph hg = Small();
  EXPECT_EQ(hg.num_vertices(), 5u);
  EXPECT_EQ(hg.num_edges(), 3u);
  EXPECT_EQ(hg.TotalIncidences(), 7u);
  EXPECT_EQ(hg.EdgeDegree(0), 3u);
  EXPECT_EQ(hg.EdgeWeight(1), 2.0f);
  EXPECT_TRUE(hg.Validate().ok());
}

TEST(HypergraphTest, AddEdgeSortsAndDeduplicates) {
  Hypergraph hg(4);
  ASSERT_TRUE(hg.AddEdge({3, 1, 3, 0}).ok());
  EXPECT_EQ(hg.EdgeVertices(0), (std::vector<int>{0, 1, 3}));
}

TEST(HypergraphTest, RejectsBadEdges) {
  Hypergraph hg(3);
  EXPECT_FALSE(hg.AddEdge({}).ok());
  EXPECT_FALSE(hg.AddEdge({0, 5}).ok());
  EXPECT_FALSE(hg.AddEdge({0}, -1.0f).ok());
  EXPECT_EQ(hg.num_edges(), 0u);
}

TEST(HypergraphTest, IncidenceMatrix) {
  Hypergraph hg = Small();
  tensor::CsrMatrix h = hg.Incidence();
  EXPECT_EQ(h.rows(), 5u);
  EXPECT_EQ(h.cols(), 3u);
  EXPECT_EQ(h.At(0, 0), 1.0f);
  EXPECT_EQ(h.At(2, 0), 1.0f);
  EXPECT_EQ(h.At(2, 1), 1.0f);
  EXPECT_EQ(h.At(0, 1), 0.0f);
  EXPECT_EQ(h.nnz(), 7u);
}

TEST(HypergraphTest, Degrees) {
  Hypergraph hg = Small();
  // Vertex 2 sits in edges 0 (w=1) and 1 (w=2): weighted degree 3.
  std::vector<float> dv = hg.VertexDegrees();
  EXPECT_EQ(dv[2], 3.0f);
  EXPECT_EQ(dv[0], 1.0f);
  std::vector<float> de = hg.EdgeDegrees();
  EXPECT_EQ(de, (std::vector<float>{3.0f, 2.0f, 2.0f}));
  std::vector<int> counts = hg.VertexEdgeCounts();
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[4], 1);
}

TEST(HypergraphTest, PairsEdgeMajor) {
  Hypergraph hg = Small();
  Hypergraph::IncidencePairs pairs = hg.Pairs();
  ASSERT_EQ(pairs.vertex.size(), 7u);
  ASSERT_EQ(pairs.edge.size(), 7u);
  EXPECT_EQ(pairs.edge[0], 0);
  EXPECT_EQ(pairs.vertex[0], 0);
  EXPECT_EQ(pairs.edge[6], 2);
  EXPECT_EQ(pairs.vertex[6], 4);
}

TEST(HypergraphTest, ConcatUnionsEdges) {
  Hypergraph a = Small();
  auto b = Hypergraph::FromEdges(5, {{0, 4}}).value();
  Hypergraph c = Hypergraph::Concat(a, b);
  EXPECT_EQ(c.num_edges(), 4u);
  EXPECT_EQ(c.num_vertices(), 5u);
  EXPECT_EQ(c.EdgeVertices(3), (std::vector<int>{0, 4}));
  EXPECT_TRUE(c.Validate().ok());
}

TEST(HypergraphTest, ConcatRequiresSameVertexCount) {
  Hypergraph a(3), b(4);
  EXPECT_DEATH(Hypergraph::Concat(a, b), "shared vertex set");
}

TEST(NormalizedAdjacencyTest, SymmetricWhenWeightsUniform) {
  // With w_e = 1 the operator Dv^-1/2 H De^-1 H^T Dv^-1/2 is symmetric.
  auto hg = Hypergraph::FromEdges(4, {{0, 1, 2}, {2, 3}}).value();
  tensor::CsrMatrix a = hg.NormalizedAdjacency();
  EXPECT_TRUE(a.AllClose(a.Transposed(), 1e-5f));
}

TEST(NormalizedAdjacencyTest, IsolatedVertexRowIsZero) {
  auto hg = Hypergraph::FromEdges(4, {{0, 1}}).value();
  tensor::CsrMatrix a = hg.NormalizedAdjacency();
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(a.At(2, c), 0.0f);
    EXPECT_EQ(a.At(3, c), 0.0f);
  }
}

TEST(NormalizedAdjacencyTest, SpectralNormAtMostOne) {
  // The normalized operator satisfies |f^T A f| <= f^T f (eigenvalues in
  // [-1, 1]) — the property that makes stacked hypergraph convolutions
  // stable. Checked via random Rayleigh quotients.
  Rng rng(5);
  Hypergraph hg(10);
  for (int e = 0; e < 8; ++e) {
    std::vector<int> members;
    for (int v = 0; v < 10; ++v) {
      if (rng.Bernoulli(0.4)) members.push_back(v);
    }
    if (members.size() >= 2) {
      ASSERT_TRUE(hg.AddEdge(members).ok());
    }
  }
  tensor::CsrMatrix a = hg.NormalizedAdjacency();
  for (int trial = 0; trial < 20; ++trial) {
    tensor::Matrix f = tensor::Matrix::Randn(10, 1, &rng);
    tensor::Matrix af = tensor::SpMM(a, f);
    double quad = 0.0, norm = 0.0;
    for (size_t i = 0; i < 10; ++i) {
      quad += static_cast<double>(f.At(i, 0)) * af.At(i, 0);
      norm += static_cast<double>(f.At(i, 0)) * f.At(i, 0);
    }
    EXPECT_LE(std::fabs(quad), norm * (1.0 + 1e-4));
  }
}

TEST(NormalizedAdjacencyTest, MatchesManualDenseComputation) {
  auto hg = Hypergraph::FromEdges(3, {{0, 1}, {1, 2}}, {2.0f, 1.0f}).value();
  // Manual: H = [[1,0],[1,1],[0,1]], W=diag(2,1), De=diag(2,2),
  // Dv = diag(2, 3, 1).
  tensor::Matrix h = tensor::Matrix::FromRows({{1, 0}, {1, 1}, {0, 1}});
  tensor::Matrix w_de_inv =
      tensor::Matrix::FromRows({{1.0f, 0}, {0, 0.5f}});
  tensor::Matrix dv_inv_sqrt = tensor::Matrix::FromRows(
      {{1.0f / std::sqrt(2.0f), 0, 0},
       {0, 1.0f / std::sqrt(3.0f), 0},
       {0, 0, 1.0f}});
  tensor::Matrix expected = tensor::MatMul(
      tensor::MatMul(
          tensor::MatMul(tensor::MatMul(dv_inv_sqrt, h), w_de_inv),
          h.Transposed()),
      dv_inv_sqrt);
  EXPECT_TRUE(hg.NormalizedAdjacency().ToDense().AllClose(expected, 1e-5f));
}

TEST(LaplacianTest, IdentityMinusAdjacency) {
  Hypergraph hg = Small();
  tensor::Matrix lap = hg.Laplacian().ToDense();
  tensor::Matrix adj = hg.NormalizedAdjacency().ToDense();
  tensor::Matrix sum = tensor::Add(lap, adj);
  EXPECT_TRUE(sum.AllClose(tensor::Matrix::Identity(5), 1e-5f));
}

TEST(ValidateTest, DetectsCorruptionAfterManualAssembly) {
  auto good = Hypergraph::FromEdges(3, {{0, 1}}).value();
  EXPECT_TRUE(good.Validate().ok());
}

TEST(DebugStringTest, MentionsCounts) {
  Hypergraph hg = Small();
  std::string s = hg.DebugString();
  EXPECT_NE(s.find("n=5"), std::string::npos);
  EXPECT_NE(s.find("m=3"), std::string::npos);
}

}  // namespace
}  // namespace ahntp::hypergraph
