// Tests for serialization, LR schedules, gradient clipping, and LayerNorm.

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "nn/layer_norm.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "nn/serialization.h"
#include "test_util.h"

namespace ahntp::nn {
namespace {

using autograd::Variable;
using tensor::Matrix;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializationTest, RoundTripRestoresExactValues) {
  Rng rng(1);
  Mlp original({6, 5, 4}, &rng);
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_test.bin";
  ASSERT_TRUE(SaveModule(original, path).ok());

  Rng rng2(99);  // different init
  Mlp restored({6, 5, 4}, &rng2);
  // Sanity: different before loading.
  EXPECT_FALSE(restored.Parameters()[0].value().AllClose(
      original.Parameters()[0].value(), 1e-6f));
  ASSERT_TRUE(LoadModule(&restored, path).ok());
  auto a = original.Parameters();
  auto b = restored.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].value().AllClose(b[i].value(), 0.0f));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RestoredModelComputesIdenticalOutputs) {
  Rng rng(2);
  Mlp original({4, 3}, &rng);
  original.SetTraining(false);
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_test2.bin";
  ASSERT_TRUE(SaveModule(original, path).ok());
  Rng rng2(3);
  Mlp restored({4, 3}, &rng2);
  restored.SetTraining(false);
  ASSERT_TRUE(LoadModule(&restored, path).ok());
  Variable x = autograd::Constant(Matrix::Randn(5, 4, &rng));
  EXPECT_TRUE(restored.Forward(x).value().AllClose(
      original.Forward(x).value(), 0.0f));
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejectedWithoutMutation) {
  Rng rng(4);
  Mlp small({3, 2}, &rng);
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_test3.bin";
  ASSERT_TRUE(SaveModule(small, path).ok());
  Mlp different({4, 2}, &rng);
  Matrix before = different.Parameters()[0].value();
  Status status = LoadModule(&different, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(different.Parameters()[0].value().AllClose(before, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializationTest, CountMismatchRejected) {
  Rng rng(5);
  Mlp two_layer({3, 3, 3}, &rng);
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_test4.bin";
  ASSERT_TRUE(SaveModule(two_layer, path).ok());
  Mlp one_layer({3, 3}, &rng);
  EXPECT_FALSE(LoadModule(&one_layer, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, GarbageFileIsCorruption) {
  std::string path = ::testing::TempDir() + "/ahntp_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  Rng rng(6);
  Mlp mlp({2, 2}, &rng);
  Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIoError) {
  Rng rng(7);
  Mlp mlp({2, 2}, &rng);
  EXPECT_EQ(LoadModule(&mlp, "/no/such/checkpoint.bin").code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ConstantLr) {
  ConstantLr schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.Rate(0), 0.01f);
  EXPECT_FLOAT_EQ(schedule.Rate(1000), 0.01f);
}

TEST(SchedulerTest, StepDecayHalvesOnSchedule) {
  StepDecayLr schedule(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(schedule.Rate(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Rate(9), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Rate(10), 0.5f);
  EXPECT_FLOAT_EQ(schedule.Rate(25), 0.25f);
}

TEST(SchedulerTest, CosineAnnealsToFloor) {
  CosineLr schedule(1.0f, 100, 0.1f);
  EXPECT_FLOAT_EQ(schedule.Rate(0), 1.0f);
  EXPECT_NEAR(schedule.Rate(50), 0.55f, 1e-5f);
  EXPECT_NEAR(schedule.Rate(100), 0.1f, 1e-5f);
  EXPECT_FLOAT_EQ(schedule.Rate(150), 0.1f);
  // Monotone decreasing.
  for (int e = 1; e < 100; ++e) {
    EXPECT_LE(schedule.Rate(e), schedule.Rate(e - 1) + 1e-7f);
  }
}

TEST(SchedulerTest, WarmupRampsLinearly) {
  WarmupLr schedule(1.0f, 4);
  EXPECT_FLOAT_EQ(schedule.Rate(0), 0.25f);
  EXPECT_FLOAT_EQ(schedule.Rate(1), 0.5f);
  EXPECT_FLOAT_EQ(schedule.Rate(3), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Rate(10), 1.0f);
}

TEST(SchedulerTest, OptimizerAcceptsRateUpdates) {
  Variable w = autograd::Parameter(Matrix(1, 1, 1.0f));
  Adam adam({w}, 0.1f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.1f);
  adam.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.01f);
  Sgd sgd({w}, 0.1f);
  sgd.set_learning_rate(0.2f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.2f);
}

// ---------------------------------------------------------------------------
// Gradient clipping
// ---------------------------------------------------------------------------

TEST(ClipTest, LargeGradientsScaledToMaxNorm) {
  Variable w = autograd::Parameter(Matrix::FromRows({{3.0f, 4.0f}}));
  autograd::ReduceSum(autograd::Mul(w, w)).Backward();  // grad = (6, 8)
  float norm = ClipGradientNorm({w}, 5.0f);
  EXPECT_NEAR(norm, 10.0f, 1e-4f);
  EXPECT_NEAR(w.grad().At(0, 0), 3.0f, 1e-4f);
  EXPECT_NEAR(w.grad().At(0, 1), 4.0f, 1e-4f);
}

TEST(ClipTest, SmallGradientsUntouched) {
  Variable w = autograd::Parameter(Matrix::FromRows({{0.1f}}));
  autograd::ReduceSum(w).Backward();  // grad = 1
  float norm = ClipGradientNorm({w}, 5.0f);
  EXPECT_NEAR(norm, 1.0f, 1e-6f);
  EXPECT_NEAR(w.grad().At(0, 0), 1.0f, 1e-6f);
}

TEST(ClipTest, GlobalNormSpansParameters) {
  Variable a = autograd::Parameter(Matrix::FromRows({{3.0f}}));
  Variable b = autograd::Parameter(Matrix::FromRows({{4.0f}}));
  autograd::ReduceSum(
      autograd::Add(autograd::Scale(a, 3.0f), autograd::Scale(b, 4.0f)))
      .Backward();  // grads 3 and 4
  float norm = ClipGradientNorm({a, b}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-4f);
  // Both scaled by the same 1/5 factor.
  EXPECT_NEAR(a.grad().At(0, 0), 0.6f, 1e-4f);
  EXPECT_NEAR(b.grad().At(0, 0), 0.8f, 1e-4f);
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

TEST(LayerNormTest, DefaultParamsStandardizeRows) {
  Rng rng(8);
  LayerNorm norm(6);
  Variable x = autograd::Constant(Matrix::Randn(4, 6, &rng, 3.0f, 2.0f));
  Variable y = norm.Forward(x);
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (size_t c = 0; c < 6; ++c) mean += y.value().At(r, c);
    mean /= 6.0;
    for (size_t c = 0; c < 6; ++c) {
      double d = y.value().At(r, c) - mean;
      var += d * d;
    }
    var /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GainAndBiasApplied) {
  LayerNorm norm(2);
  auto params = norm.Parameters();
  params[0].mutable_value().Fill(2.0f);  // gain
  params[1].mutable_value().Fill(1.0f);  // bias
  Variable x = autograd::Constant(Matrix::FromRows({{-1.0f, 1.0f}}));
  Variable y = norm.Forward(x);
  // Standardized row is (-1, 1); y = 2*std + 1 = (-1, 3).
  EXPECT_NEAR(y.value().At(0, 0), -1.0f, 1e-4f);
  EXPECT_NEAR(y.value().At(0, 1), 3.0f, 1e-4f);
}

TEST(LayerNormTest, GradientCheck) {
  Rng rng(9);
  LayerNorm norm(3);
  Matrix x = Matrix::Randn(4, 3, &rng);
  ahntp::testing::ExpectGradientsClose(
      [&norm, &x](const std::vector<Variable>&) {
        Variable y = norm.Forward(autograd::Constant(x));
        Matrix w(4, 3);
        for (size_t i = 0; i < w.size(); ++i) {
          w.data()[i] = static_cast<float>((i * 13) % 7) - 3.0f;
        }
        return autograd::ReduceSum(autograd::MulConst(y, w));
      },
      norm.Parameters());
}

// ---------------------------------------------------------------------------
// New autograd ops
// ---------------------------------------------------------------------------

TEST(GradCheckExtras, SqrtAbsPow) {
  Rng rng(10);
  Matrix positive = Matrix::RandUniform(3, 3, &rng, 0.5f, 2.0f);
  ahntp::testing::ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        return autograd::ReduceSum(autograd::Add(
            autograd::Sqrt(p[0]),
            autograd::Add(autograd::Abs(p[0]),
                          autograd::PowScalar(p[0], 1.7f))));
      },
      {autograd::Parameter(positive)});
}

TEST(GradCheckExtras, RowStandardize) {
  Rng rng(11);
  Matrix x = Matrix::Randn(3, 5, &rng);
  ahntp::testing::ExpectGradientsClose(
      [](const std::vector<Variable>& p) {
        Variable y = autograd::RowStandardize(p[0]);
        Matrix w(3, 5);
        for (size_t i = 0; i < w.size(); ++i) {
          w.data()[i] = static_cast<float>((i * 5) % 4) - 1.5f;
        }
        return autograd::ReduceSum(autograd::MulConst(y, w));
      },
      {autograd::Parameter(x)});
}

TEST(AbsTest, ValuesNonNegative) {
  Variable x = autograd::Parameter(Matrix::FromRows({{-2.0f, 3.0f, 0.0f}}));
  Variable y = autograd::Abs(x);
  EXPECT_EQ(y.value().At(0, 0), 2.0f);
  EXPECT_EQ(y.value().At(0, 1), 3.0f);
  EXPECT_EQ(y.value().At(0, 2), 0.0f);
}

}  // namespace
}  // namespace ahntp::nn
