#!/usr/bin/env bash
# Robustness gate (DESIGN.md §16): adversarial presets, calibrated
# confidence, and abstain-aware serving.
#   - robustness_test: seed-ensemble/MC-dropout confidence (canonical
#     scores bitwise-stable, thread-count and sharded-vs-monolithic
#     invariance) and the server's abstain partition (fallback routing,
#     never-cached, FailedPrecondition without a fallback);
#   - data_test AttackTest + fuzz_test AttackSpecFuzzTest: clean-prefix
#     preservation, per-attack structure, degenerate-spec rejection, and
#     random-spec no-crash fuzzing;
#   - serve_demo at --threads=1/2/8: the SERVE_CONF digest (confidence +
#     abstain outcomes, FNV-1a over score/confidence bits) must be
#     byte-identical across thread counts, with abstained > 0 and the
#     abstained-never-cached wave symmetry held;
#   - bench_robustness at a reduced scale: BENCH_robustness.json schema
#     and the abstain gate — served AUC must beat full AUC under at least
#     2 attack presets (the bench exits non-zero when the gate fails);
#   - robustness_test under TSan: the ensemble fans members out over the
#     shared pool from the serving dispatcher.
# Usage:
#   scripts/check_robustness.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target robustness_test data_test fuzz_test serve_demo \
               bench_robustness

echo "########## robustness_test (uncertainty + abstain) ##########"
"$build_dir/tests/robustness_test"

echo "########## attack presets: structure + degenerate specs ##########"
"$build_dir/tests/data_test" --gtest_filter='AttackTest.*'
"$build_dir/tests/fuzz_test" --gtest_filter='*AttackSpecFuzzTest*'

echo "########## serve_demo SERVE_CONF digest at --threads=1/2/8 ##########"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
run_demo() {  # <threads> <tag>
  "$build_dir/examples/serve_demo" \
      --threads="$1" --scale=0.03 \
      --serve_checkpoint="$workdir/conf_$2.ckpt" > "$workdir/stdout_$2.txt"
  grep '^SERVE_CONF' "$workdir/stdout_$2.txt" > "$workdir/conf_$2.txt"
}
run_demo 1 t1
run_demo 2 t2
run_demo 8 t8
for tag in t2 t8; do
  if ! diff "$workdir/conf_t1.txt" "$workdir/conf_$tag.txt"; then
    echo "FAIL: SERVE_CONF differs between --threads=1 and --threads=${tag#t}" >&2
    exit 1
  fi
done
echo "SERVE_CONF identical at --threads=1/2/8"
python3 - "$workdir/conf_t1.txt" <<'EOF'
import json, sys
line = open(sys.argv[1]).read()
conf = json.loads(line[len("SERVE_CONF "):])
assert float.fromhex(conf["threshold"]) > 0.0, "degenerate threshold"
assert conf["abstained"] > 0, "abstain path never taken"
assert conf["ok"] > 0, "no confident primary responses"
assert conf["degraded"] >= conf["abstained"], "abstains not served degraded"
assert conf["cache_hits"] > 0, "confident repeats not cache-absorbed"
assert len(conf["digest"]) == 16, "malformed digest"
print(f'SERVE_CONF OK ({conf["abstained"]} abstained / {conf["ok"]} ok / '
      f'{conf["cache_hits"]} cache hits)')
EOF

echo "########## bench_robustness: abstain gate + JSON schema ##########"
# Reduced scale/epochs keep the gate fast; the bench itself exits non-zero
# when abstention fails to recover AUC under >= 2 attack presets.
repo_root="$(pwd)"
(cd "$workdir" && \
 "$repo_root/$build_dir/bench/bench_robustness" \
     --scale=0.04 --epochs=25 --models=SGC,AHNTP --threads="$(nproc 2>/dev/null || echo 2)")
python3 - "$workdir/BENCH_robustness.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "schema_version", "table", "abstain_sweep", "gates"):
    assert key in doc, f"missing key: {key}"
assert doc["bench"] == "robustness"
presets = {row["preset"] for row in doc["table"]}
assert {"clean", "sybil", "spam", "camouflage", "shift"} <= presets, presets
for row in doc["table"]:
    assert 0.0 <= row["auc"] <= 1.0 and 0.0 <= row["ece"] <= 1.0, row
for row in doc["abstain_sweep"]:
    assert 0.0 <= row["abstain_rate"] <= 1.0, row
    assert row["served"] + 0 >= 0 and row["full_auc"] > 0.0, row
gates = doc["gates"]
assert gates["pass"] is True, gates
assert gates["passing_presets"] >= gates["required_presets"], gates
print(f'BENCH_robustness.json OK ({len(doc["table"])} table rows, '
      f'{len(doc["abstain_sweep"])} sweep rows, '
      f'{gates["passing_presets"]} presets recovered AUC)')
EOF

echo "########## robustness_test under TSan ##########"
tsan_dir="build-threadsan"
cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target robustness_test
AHNTP_THREADS="${AHNTP_THREADS:-8}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    "$tsan_dir/tests/robustness_test"

echo "robustness checks passed"
