#!/usr/bin/env bash
# Overload-bench gate for the serving layer (bench/bench_serve_load):
#   - runs the multi-tenant hot-key mix at 4x offered load twice, without
#     and with an AHNTP_FAULTS spec;
#   - validates the BENCH_serve_load.json schema (schema_version 2, one
#     row per (threads, lane), every row carrying the lane key);
#   - diffs the per-lane outcome digests across --threads=1/2/8: the
#     digest folds status codes, degraded/cached/coalesced flags, and
#     score bits, so any thread-count divergence in the overload-control
#     machinery fails the gate;
#   - checks the no-rejection-cliff acceptance (strict-lane shed <= 5%,
#     also enforced by the bench's own exit code);
#   - with SERVE_LOAD_TSAN=1, re-runs the mix at a small scale under TSan
#     (the coalescing map + shared score cache are the new
#     concurrency-sensitive surfaces).
# Usage:
#   scripts/check_serve_load.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target bench_serve_load

repo_root="$(pwd)"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run_bench() {  # <tag> <fault-spec ('' for none)>
  (cd "$workdir" &&
   AHNTP_FAULTS="$2" "$repo_root/$build_dir/bench/bench_serve_load" \
       --scale=0.02 --fault_seed=42 > "stdout_$1.txt")
  mv "$workdir/BENCH_serve_load.json" "$workdir/bench_$1.json"
}

echo "########## bench_serve_load, fault-free ##########"
run_bench plain ''
echo "########## bench_serve_load under AHNTP_FAULTS ##########"
run_bench faults 'serve.infer@~0.75'

validate() {  # <tag>
  local tag="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$workdir/bench_$tag.json" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("schema_version") == 2, "schema_version must be 2"
rows = data["rows"]
assert rows, "bench emitted no rows"
lanes = {"strict", "degraded", "besteffort"}
required = ("threads", "lane", "offered", "admitted", "ok", "degraded",
            "rejected", "shed_rate", "p50_ms", "p99_ms", "digest")
digests, threads_seen = {}, set()
for row in rows:
    for key in required:
        assert key in row, f"row missing {key}: {row}"
    assert row["lane"] in lanes, f"unknown lane {row['lane']}"
    threads_seen.add(row["threads"])
    digests.setdefault(row["lane"], set()).add(row["digest"])
assert len(threads_seen) >= 3, f"expected a thread sweep, got {threads_seen}"
for lane, seen in sorted(digests.items()):
    assert len(seen) == 1, \
        f"{lane} digests differ across thread counts: {sorted(seen)}"
for row in rows:
    if row["lane"] == "strict":
        assert row["shed_rate"] <= 0.05, \
            f"strict lane shed {row['shed_rate']:.2%} at threads={row['threads']}"
print(f"{sys.argv[1]}: schema v2 OK, {len(rows)} rows, per-lane digests "
      f"identical across threads {sorted(threads_seen)}")
EOF
  else
    # No python3: grep for the load-bearing parts. Each lane's digest
    # line set must collapse to one unique digest across thread counts.
    grep -q '"schema_version": 2' "$workdir/bench_$tag.json"
    grep -q '"lane": "strict"' "$workdir/bench_$tag.json"
    for lane in strict degraded besteffort; do
      n=$(grep "lane=$lane " "$workdir/stdout_$tag.txt" |
          sed 's/.*digest=//' | sort -u | wc -l)
      if [ "$n" -ne 1 ]; then
        echo "FAIL: $lane digests differ across thread counts ($tag)" >&2
        exit 1
      fi
    done
    echo "bench_$tag.json looks structurally sound (no python3)"
  fi
}
validate plain
validate faults

if [ "${SERVE_LOAD_TSAN:-0}" = "1" ]; then
  echo "########## hot-key overload mix under TSan ##########"
  tsan_dir="build-threadsan"
  cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" \
        --target bench_serve_load
  (cd "$workdir" &&
   AHNTP_FAULTS='serve.infer@~0.75' \
   TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
   "$repo_root/$tsan_dir/bench/bench_serve_load" \
       --scale=0.01 --fault_seed=42 --serve_queue_capacity=32 \
       --strict_reserve=8 > stdout_tsan.txt)
  echo "TSan hot-key mix clean"
fi

echo "serve load checks passed"
