#!/usr/bin/env bash
# Runs every table/figure reproduction binary and the micro-benchmarks,
# teeing the combined output. Usage:
#   scripts/run_all_benches.sh [output-file] [-- extra flags for the
#   table/figure binaries, e.g. --scale=0.125 --seeds=3]
set -u
cd "$(dirname "$0")/.."

out="${1:-bench_output.txt}"
shift || true
[ "${1:-}" = "--" ] && shift

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "########## $b ##########"
    case "$b" in
      *micro*) "$b" ;;          # google-benchmark binaries reject our flags
      *) "$b" "$@" ;;
    esac
  done
} 2>&1 | tee "$out"
