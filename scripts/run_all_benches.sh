#!/usr/bin/env bash
# Runs every table/figure reproduction binary and the micro-benchmarks,
# teeing the combined output. Usage:
#   scripts/run_all_benches.sh [output-file] [-- extra flags for the
#   table/figure binaries, e.g. --scale=0.125 --seeds=3 --threads=8]
#
# Thread plumbing: AHNTP_THREADS (default: all cores) configures the
# execution substrate for every binary; table/figure binaries additionally
# accept --threads=N, and each records the resolved count in its
# BENCH_META JSON line. google-benchmark binaries emit JSON per run via
# --benchmark_out, with the thread count embedded in the file name.
set -u
cd "$(dirname "$0")/.."

out="${1:-bench_output.txt}"
shift || true
[ "${1:-}" = "--" ] && shift

# Default the substrate's worker count explicitly so it is recorded even
# when the caller sets nothing.
export AHNTP_THREADS="${AHNTP_THREADS:-$(nproc 2>/dev/null || echo 1)}"

{
  echo "BENCH_META {\"suite\": \"run_all_benches\", \"threads\": ${AHNTP_THREADS}}"
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "########## $b ##########"
    case "$b" in
      *micro*)  # google-benchmark binaries reject our flags; JSON sidecar
        "$b" --benchmark_out="${b##*/}.threads${AHNTP_THREADS}.json" \
             --benchmark_out_format=json
        ;;
      *) "$b" --threads="${AHNTP_THREADS}" "$@" ;;
    esac
  done
} 2>&1 | tee "$out"
