#!/usr/bin/env bash
# The full pre-land gate: tier-1 ctest suite, then the focused sanitizer
# and observability checks. Usage:
#   scripts/check_all.sh
#
# Stops at the first failing stage (each stage's own script reports the
# details); a clean exit means every gate passed. A gate script that has
# gone missing (renamed, dropped from a bad merge) is itself a failure —
# silently skipping it would report "all checks passed" without running it.
set -eu
cd "$(dirname "$0")/.."

gates=(
  "observability:scripts/check_observability.sh"
  "compiled inference:scripts/check_inference.sh"
  "serving:scripts/check_serve.sh"
  "serve overload, per-lane digests:scripts/check_serve_load.sh"
  "robustness, abstain gate:scripts/check_robustness.sh"
  "dynamic updates, write lane:scripts/check_dynamic.sh"
  "sharded scale:scripts/check_scale.sh"
  "ASan/UBSan:scripts/check_asan.sh"
  "TSan:scripts/check_tsan.sh"
)

missing=0
for gate in "${gates[@]}"; do
  script="${gate#*:}"
  if [ ! -x "$script" ]; then
    echo "MISSING GATE: $script (not found or not executable)" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "refusing to run with missing gate scripts" >&2
  exit 1
fi

echo "================ tier-1: build + ctest ================"
cmake -B build -S .
cmake --build build -j"$(nproc 2>/dev/null || echo 2)"
(cd build && ctest --output-on-failure -j"$(nproc 2>/dev/null || echo 2)")

for gate in "${gates[@]}"; do
  name="${gate%%:*}"
  script="${gate#*:}"
  echo "================ ${name} ================"
  "$script"
done

echo "all checks passed"
