#!/usr/bin/env bash
# The full pre-land gate: tier-1 ctest suite, then the focused sanitizer
# and observability checks. Usage:
#   scripts/check_all.sh
#
# Stops at the first failing stage (each stage's own script reports the
# details); a clean exit means every gate passed.
set -eu
cd "$(dirname "$0")/.."

echo "================ tier-1: build + ctest ================"
cmake -B build -S .
cmake --build build -j"$(nproc 2>/dev/null || echo 2)"
(cd build && ctest --output-on-failure -j"$(nproc 2>/dev/null || echo 2)")

echo "================ observability ================"
scripts/check_observability.sh

echo "================ compiled inference ================"
scripts/check_inference.sh

echo "================ serving ================"
scripts/check_serve.sh

echo "================ serve overload: per-lane digests ================"
scripts/check_serve_load.sh

echo "================ sharded scale ================"
scripts/check_scale.sh

echo "================ ASan/UBSan ================"
scripts/check_asan.sh

echo "================ TSan ================"
scripts/check_tsan.sh

echo "all checks passed"
