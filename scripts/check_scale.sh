#!/usr/bin/env bash
# Sharded out-of-core gate (DESIGN.md §14): the sharded build and the
# shard-aware inference plan must stay bit-identical to the monolithic path
# and race-free.
#   - sharding_test: partitioner validation/fuzz boundary, halo-subgraph
#     invariants, sharded analytics + all four hypergroup builders bitwise
#     vs K=1 at threads 1/2/8, streaming-generator reassembly, and the
#     bounded-LRU inference plan (score parity, eviction accounting,
#     corruption detection);
#   - bench_scale --quick: a small sweep whose cross-K score-digest CHECK is
#     the sharded-vs-monolithic digest diff — the parent process aborts if
#     any shard count changes a single output bit;
#   - sharding_test under TSan: per-shard builders fan out on the shared
#     pool; oversubscribed workers must come back clean.
# Usage:
#   scripts/check_scale.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target sharding_test bench_scale

echo "########## sharding_test (parity + residency assertions) ##########"
"$build_dir/tests/sharding_test"

echo "########## bench_scale digest diff (sharded vs monolithic) ##########"
# Small populations keep the gate fast; the shard list must include 1 so
# the cross-K digest equality CHECK compares against the monolithic oracle.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
repo_root="$(pwd)"
(cd "$workdir" && \
 "$repo_root/$build_dir/bench/bench_scale" \
     --users=2000,8000 --shards=1,4 --pairs=512)

echo "########## sharding_test under TSan ##########"
tsan_dir="build-threadsan"
cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target sharding_test
AHNTP_THREADS="${AHNTP_THREADS:-8}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    "$tsan_dir/tests/sharding_test"

echo "scale checks passed"
