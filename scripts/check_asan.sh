#!/usr/bin/env bash
# Builds the test suite with ASan+UBSan (AHNTP_SANITIZE=address) and runs
# the fault-tolerance-sensitive tests. Usage:
#   scripts/check_asan.sh [extra test binaries...]
#
# ASan/UBSan is the gate for the robustness layer (common/fault.*,
# common/fileio.*, nn/serialization.*, the divergence guard, and the sweep
# state machinery): corruption handling parses attacker-shaped bytes, so
# the parsers must come back clean under sanitizers before changes land.
set -eu
cd "$(dirname "$0")/.."

tests=(fault_test fuzz_test nn_test data_test core_test common_test "$@")

build_dir="build-addresssan"
cmake -B "$build_dir" -S . -DAHNTP_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" --target \
      "${tests[@]}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

status=0
for t in "${tests[@]}"; do
  echo "########## $t (AHNTP_SANITIZE=address) ##########"
  "$build_dir/tests/$t" || status=$?
done
exit "$status"
