#!/usr/bin/env bash
# Compiled-inference gate: the tape-free scoring path must stay bit-identical
# to the autograd tape, allocation-free at steady state, and race-free.
#   - inference_test: bitwise compiled-vs-tape parity across the full model
#     zoo at --threads=1/2/8, workspace reuse/reset semantics, the
#     zero-allocation scoring-loop assertion, and cache invalidation on
#     training steps, checkpoint loads, and (fault-injected) hot reloads;
#   - bench_inference: end-to-end parity CHECKs on the EpinionsLike preset
#     plus the tape-vs-compiled latency rows (BENCH_inference.json);
#   - inference_test under TSan: one predictor per dispatcher shares no
#     mutable state, and the reload staging path must stay clean.
# Usage:
#   scripts/check_inference.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target inference_test bench_inference

echo "########## inference_test (parity + allocation assertions) ##########"
"$build_dir/tests/inference_test"

echo "########## bench_inference parity CHECKs ##########"
# The bench CHECK-fails on any tape/compiled score mismatch before timing;
# a tiny iteration count keeps the gate fast while still exercising the
# warm scoring loop.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
repo_root="$(pwd)"
(cd "$workdir" && \
 "$repo_root/$build_dir/bench/bench_inference" --iters=3 --scale=0.03)

echo "########## inference_test under TSan ##########"
tsan_dir="build-threadsan"
cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target inference_test
AHNTP_THREADS="${AHNTP_THREADS:-8}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    "$tsan_dir/tests/inference_test"

echo "compiled-inference checks passed"
