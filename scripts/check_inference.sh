#!/usr/bin/env bash
# Compiled-inference gate: the tape-free scoring path must stay bit-identical
# to the autograd tape, the SIMD kernels must honor the two-tier parity
# contract against the scalar oracle, int8 quantization must stay inside its
# tolerance and AUC budget, and the whole path must be allocation-free at
# steady state and race-free.
#   - kernel_parity_test: randomized differential tests of every AVX2 kernel
#     vs the scalar oracle (exact tier bitwise incl. NaN/-0.0 probes, fma
#     tier to tolerance, thread-count invariance, remainder lanes);
#   - inference_test: bitwise compiled-vs-tape parity across the full model
#     zoo at --threads=1/2/8, int8 quantization edge cases, workspace
#     reuse/reset semantics, the zero-allocation scoring-loop assertion,
#     and cache invalidation on training steps, checkpoint loads, and
#     (fault-injected) hot reloads;
#   - bench_inference: end-to-end parity CHECKs (tape vs compiled,
#     scalar-vs-AVX2-vs-int8 kernel matrix) and the per-model AUC guard
#     (|AUC(int8) - AUC(fp32)| <= 0.002), run twice — default ISA and
#     pinned AHNTP_KERNEL_ISA=scalar — with a JSON schema check on
#     BENCH_inference.json;
#   - kernel_parity_test + inference_test under TSan: the dispatch atomics
#     and per-predictor plans share no unsynchronized mutable state.
# Usage:
#   scripts/check_inference.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target kernel_parity_test inference_test bench_inference

echo "########## kernel_parity_test (SIMD vs scalar oracle) ##########"
"$build_dir/tests/kernel_parity_test"

echo "########## inference_test (parity + quantization + allocations) ##########"
"$build_dir/tests/inference_test"

echo "########## bench_inference parity CHECKs (default ISA) ##########"
# The bench CHECK-fails on any tape/compiled score mismatch, any kernel-row
# drift past its tolerance, and any model whose AUC moves more than 0.002
# under int8 — before timing anything. A tiny iteration count keeps the
# gate fast while still exercising the warm scoring loop.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
repo_root="$(pwd)"
(cd "$workdir" && \
 "$repo_root/$build_dir/bench/bench_inference" --iters=3 --scale=0.03)

echo "########## BENCH_inference.json schema ##########"
python3 - "$workdir/BENCH_inference.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "plan_build_ms", "rows", "shards", "kernel_isa",
            "kernels", "auc_guard"):
    assert key in doc, f"missing key: {key}"
assert doc["bench"] == "inference"
assert doc["kernel_isa"] in ("scalar", "avx2")
assert len(doc["rows"]) > 0 and len(doc["kernels"]) > 0
for row in doc["rows"]:
    for key in ("batch", "tape_ms", "compiled_ms", "speedup"):
        assert key in row, f"rows missing {key}"
isas = set()
for row in doc["kernels"]:
    for key in ("isa", "precision", "score_ms", "bytes_per_user",
                "max_delta_vs_scalar_fp32"):
        assert key in row, f"kernels missing {key}"
    assert row["isa"] in ("scalar", "avx2")
    assert row["precision"] in ("fp32", "int8")
    isas.add((row["isa"], row["precision"]))
assert ("scalar", "fp32") in isas, "scalar fp32 reference row missing"
assert any(p == "int8" for _, p in isas), "int8 row missing"
fp32 = next(r for r in doc["kernels"]
            if r["isa"] == "scalar" and r["precision"] == "fp32")
for row in doc["kernels"]:
    if row["precision"] == "int8":
        ratio = fp32["bytes_per_user"] / row["bytes_per_user"]
        assert ratio > 3.0, f"int8 table only {ratio:.2f}x smaller"
assert len(doc["auc_guard"]) > 0
for row in doc["auc_guard"]:
    for key in ("model", "auc_fp32", "auc_int8", "delta"):
        assert key in row, f"auc_guard missing {key}"
    assert row["delta"] <= 0.002, f"{row['model']}: AUC delta {row['delta']}"
print(f"schema OK: {len(doc['kernels'])} kernel rows, "
      f"{len(doc['auc_guard'])} AUC-guarded models")
EOF

echo "########## bench_inference parity CHECKs (pinned scalar ISA) ##########"
# Pinning AHNTP_KERNEL_ISA=scalar exercises the env-var resolution path and
# proves the scalar oracle still passes every gate on its own (the frozen
# pre-SIMD behaviour).
(cd "$workdir" && AHNTP_KERNEL_ISA=scalar \
 "$repo_root/$build_dir/bench/bench_inference" --iters=2 --scale=0.03)
python3 - "$workdir/BENCH_inference.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["kernel_isa"] == "scalar", doc["kernel_isa"]
print("pinned-scalar run OK")
EOF

echo "########## kernel_parity_test + inference_test under TSan ##########"
tsan_dir="build-threadsan"
cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target kernel_parity_test inference_test
AHNTP_THREADS="${AHNTP_THREADS:-8}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    "$tsan_dir/tests/kernel_parity_test"
AHNTP_THREADS="${AHNTP_THREADS:-8}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    "$tsan_dir/tests/inference_test"

echo "compiled-inference checks passed"
