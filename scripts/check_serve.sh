#!/usr/bin/env bash
# Serving-substrate gate: builds serve_demo + serve_test, drives the demo
# under env-injected faults (AHNTP_FAULTS) at --threads=1/2/8, and checks
# the robustness invariants end to end:
#   - the demo's own invariant checks pass (exit 0, no crash);
#   - SERVE_SUMMARY, SERVE_SCORES, and SERVE_LANES digests are
#     byte-identical across thread counts (the serving determinism
#     contract, now covering admission lanes, coalescing, and the score
#     cache);
#   - the fault stream actually exercised the machinery (breaker tripped
#     and recovered, degraded responses served, exactly one reload
#     rejected, hot keys coalesced, repeat wave cache-absorbed);
#   - the metrics sidecar carries the serve.* counter schema including
#     the per-lane counters;
#   - serve_test comes back clean under TSan (the queue/dispatcher
#     hand-off is the concurrency-sensitive surface), and the hot-key
#     overload mix runs clean under TSan too (via check_serve_load.sh).
# Usage:
#   scripts/check_serve.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target serve_demo serve_test

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "########## serve_test ##########"
"$build_dir/tests/serve_test"

echo "########## serve_demo under AHNTP_FAULTS ##########"
# serve.infer@~0.75: three quarters of inference attempts fail with
# Unavailable — enough to burn through retries, trip the breaker, degrade
# to the heuristic fallback, and then recover via probes.
run_demo() {  # <threads> <tag>
  AHNTP_FAULTS='serve.infer@~0.75' \
  "$build_dir/examples/serve_demo" \
      --fault_seed=42 --threads="$1" --scale=0.03 \
      --serve_checkpoint="$workdir/serve_$2.ckpt" \
      --metrics_out="$workdir/metrics_$2.json" > "$workdir/stdout_$2.txt"
  grep -E '^SERVE_(SUMMARY|SCORES|LANES)' "$workdir/stdout_$2.txt" \
      > "$workdir/digest_$2.txt"
}
run_demo 1 t1
run_demo 2 t2
run_demo 8 t8

for tag in t2 t8; do
  if ! diff "$workdir/digest_t1.txt" "$workdir/digest_$tag.txt"; then
    echo "FAIL: serve digests differ between --threads=1 and --threads=${tag#t}" >&2
    exit 1
  fi
done
echo "SERVE_SUMMARY, SERVE_SCORES, and SERVE_LANES identical at --threads=1/2/8"

# The run must have exercised every robustness path, and the metrics
# sidecar must carry the serve.* counter schema. python3 is the arbiter
# when present; otherwise grep for the load-bearing parts.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]
line = [l for l in open(f"{workdir}/stdout_t8.txt")
        if l.startswith("SERVE_SUMMARY ")][0]
summary = json.loads(line[len("SERVE_SUMMARY "):])
assert summary["retries"] > 0, "no retries under a 75% fault rate"
assert summary["breaker_trips"] >= 1, "breaker never tripped"
assert summary["breaker_recoveries"] >= 1, "breaker never recovered"
assert summary["degraded"] >= 1, "no degraded responses served"
assert summary["reload_failures"] == 1, "corrupt reload not rejected once"
assert summary["reload_success"] == 1, "pristine reload did not succeed"
assert summary["coalesced"] > 0, "hot keys never coalesced"
assert summary["cache_hits"] > 0, "the repeat wave never hit the score cache"
assert summary["coalesced_expired"] >= 1, "coalesced-expiry path not taken"
lanes_line = [l for l in open(f"{workdir}/stdout_t8.txt")
              if l.startswith("SERVE_LANES ")][0]
lanes = json.loads(lanes_line[len("SERVE_LANES "):])
assert lanes["strict_rejected"] == 0, "the strict reservation leaked"
assert lanes["besteffort_admitted"] > 0, "best-effort lane starved entirely"
metrics = json.load(open(f"{workdir}/metrics_t8.json"))
counters = metrics["counters"]
for key in ["serve.submitted", "serve.ok", "serve.retries",
            "serve.degraded", "serve.breaker_trips",
            "serve.reload_failures", "serve.reload_success",
            "serve.coalesced", "serve.cache_hits", "serve.downgraded",
            "serve.lane.strict.admitted", "serve.lane.degraded.admitted",
            "serve.lane.besteffort.admitted"]:
    assert key in counters, f"metrics sidecar missing {key}"
gauges = metrics.get("gauges", {})
assert "serve.breaker_state" in gauges, "breaker state gauge not exported"
print(f"summary OK ({summary['ok']} ok / {summary['degraded']} degraded / "
      f"{summary['retries']} retries / {summary['coalesced']} coalesced / "
      f"{summary['cache_hits']} cache hits), "
      f"sidecar OK ({len(counters)} counters)")
EOF
else
  grep -q '"breaker_trips": [1-9]' "$workdir/digest_t8.txt"
  grep -q '"breaker_recoveries": [1-9]' "$workdir/digest_t8.txt"
  grep -q '"degraded": [1-9]' "$workdir/digest_t8.txt"
  grep -q '"reload_failures": 1' "$workdir/digest_t8.txt"
  grep -q '"serve.submitted"' "$workdir/metrics_t8.json"
  grep -q '"serve.reload_failures"' "$workdir/metrics_t8.json"
  echo "summary and metrics sidecar look structurally sound (no python3)"
fi

echo "########## serve_test under TSan ##########"
tsan_dir="build-threadsan"
cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" --target serve_test
AHNTP_THREADS="${AHNTP_THREADS:-8}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    "$tsan_dir/tests/serve_test"

echo "########## overload bench: schema, per-lane digests, TSan mix ##########"
SERVE_LOAD_TSAN=1 scripts/check_serve_load.sh "$build_dir"

echo "serving checks passed"
