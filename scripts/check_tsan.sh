#!/usr/bin/env bash
# Builds the test suite with a sanitizer and runs the concurrency-sensitive
# tests. Usage:
#   scripts/check_tsan.sh [thread|address]   (default: thread)
#
# TSan is the gate for the execution substrate (common/parallel.*): the
# parallel tests plus the kernel suites that now dispatch to the pool must
# come back clean before changes to the pool or the parallel kernels land.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-thread}"
case "$mode" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

build_dir="build-${mode}san"
cmake -B "$build_dir" -S . -DAHNTP_SANITIZE="$mode" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" --target \
      parallel_test matrix_test csr_test graph_test core_test \
      observability_test serve_test

# Oversubscribe on purpose: more workers than cores shakes out ordering
# bugs that a matched count can hide.
export AHNTP_THREADS="${AHNTP_THREADS:-8}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

status=0
for t in parallel_test matrix_test csr_test graph_test core_test \
         observability_test serve_test; do
  echo "########## $t (AHNTP_SANITIZE=$mode, AHNTP_THREADS=$AHNTP_THREADS) ##########"
  "$build_dir/tests/$t" || status=$?
done
exit "$status"
