#!/usr/bin/env bash
# Dynamic-update gate (DESIGN.md §17):
#   - runs dynamic_test (incremental == rebuild oracles, fault rollback,
#     write-lane semantics) and the GraphDelta fuzz suite;
#   - diffs the serve_demo SERVE_MUT digest across --threads=1/2/8: the
#     digest folds mutation receipts, generations, and every read score,
#     so any thread-count divergence in the write lane fails the gate;
#   - runs bench_dynamic and validates the BENCH_dynamic.json schema plus
#     the >= 20x 1-edge plan-patch gate (also enforced by the bench's own
#     exit code);
#   - unless DYNAMIC_TSAN=0, re-runs dynamic_test under TSan (the write
#     lane and the generation probe are the concurrency-sensitive
#     surfaces).
# Usage:
#   scripts/check_dynamic.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target dynamic_test fuzz_test serve_demo bench_dynamic

echo "########## dynamic_test ##########"
"$build_dir/tests/dynamic_test"

echo "########## GraphDelta fuzz suite ##########"
"$build_dir/tests/fuzz_test" --gtest_filter='*GraphDeltaFuzz*'

repo_root="$(pwd)"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "########## serve_demo SERVE_MUT digest across thread counts ##########"
for t in 1 2 8; do
  (cd "$workdir" &&
   "$repo_root/$build_dir/examples/serve_demo" --threads="$t" \
       > "stdout_t$t.txt")
  grep '^SERVE_MUT ' "$workdir/stdout_t$t.txt" > "$workdir/mut_t$t.txt"
done
if ! diff "$workdir/mut_t1.txt" "$workdir/mut_t2.txt" ||
   ! diff "$workdir/mut_t1.txt" "$workdir/mut_t8.txt"; then
  echo "FAIL: SERVE_MUT digest differs across thread counts" >&2
  exit 1
fi
echo "SERVE_MUT identical at --threads=1/2/8:"
cat "$workdir/mut_t1.txt"

echo "########## bench_dynamic ##########"
(cd "$workdir" &&
 "$repo_root/$build_dir/bench/bench_dynamic" --scale=0.04 --iters=3 \
     --rebuilds=1 > stdout_bench.txt)
tail -n 2 "$workdir/stdout_bench.txt"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$workdir/BENCH_dynamic.json" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("bench") == "dynamic", "bench id must be 'dynamic'"
rows = data["rows"]
assert [r["delta_edges"] for r in rows] == [1, 10, 1000], \
    f"expected delta sizes 1/10/1000, got {[r['delta_edges'] for r in rows]}"
required = ("delta_edges", "apply_ms", "plan_patch_ms", "refresh_ms",
            "plan_rebuild_ms", "pipeline_rebuild_ms", "plan_speedup",
            "pipeline_speedup", "refreshed_users", "pagerank_iters_saved")
for row in rows:
    for key in required:
        assert key in row, f"row missing {key}: {row}"
staleness = data["staleness_vs_latency"]
assert len(staleness) >= 2, "staleness tradeoff needs at least two windows"
for row in staleness:
    for key in ("window", "refreshes", "total_ms", "worst_staleness_edges"):
        assert key in row, f"staleness row missing {key}: {row}"
gate = data["gate"]
assert gate["min_plan_speedup_1edge"] == 20.0
assert gate["measured"] >= 20.0, \
    f"1-edge plan patch speedup {gate['measured']}x below the 20x gate"
print(f"{sys.argv[1]}: schema OK, 1-edge plan patch {gate['measured']}x")
EOF
else
  # No python3: grep for the load-bearing parts.
  grep -q '"bench": "dynamic"' "$workdir/BENCH_dynamic.json"
  grep -q '"delta_edges": 1000' "$workdir/BENCH_dynamic.json"
  grep -q '"staleness_vs_latency"' "$workdir/BENCH_dynamic.json"
  grep -q 'gate: 1-edge plan patch speedup' "$workdir/stdout_bench.txt"
  echo "BENCH_dynamic.json looks structurally sound (no python3)"
fi

if [ "${DYNAMIC_TSAN:-1}" = "1" ]; then
  echo "########## dynamic_test under TSan ##########"
  tsan_dir="build-threadsan"
  cmake -B "$tsan_dir" -S . -DAHNTP_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$tsan_dir" -j"$(nproc 2>/dev/null || echo 2)" \
        --target dynamic_test
  AHNTP_THREADS="${AHNTP_THREADS:-8}" \
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  "$tsan_dir/tests/dynamic_test"
fi

echo "dynamic checks passed"
