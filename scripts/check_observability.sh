#!/usr/bin/env bash
# Builds the quickstart pipeline and drives the observability layer end to
# end: runs it with --trace_out/--metrics_out, validates that the Chrome
# trace JSON parses and the metrics snapshot is non-empty, and checks the
# determinism contract (the "counters" section of the snapshot must be
# byte-identical at --threads=1 and --threads=8). Usage:
#   scripts/check_observability.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 2)" \
      --target quickstart observability_test golden_trace_test

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "########## observability_test ##########"
"$build_dir/tests/observability_test"

echo "########## golden_trace_test ##########"
"$build_dir/tests/golden_trace_test"

echo "########## quickstart with tracing + metrics ##########"
run_quickstart() {  # <threads> <tag>
  "$build_dir/examples/quickstart" --scale=0.03 --epochs=3 \
      --threads="$1" \
      --trace_out="$workdir/trace_$2.json" \
      --metrics_out="$workdir/metrics_$2.json" > "$workdir/stdout_$2.txt"
}
run_quickstart 1 t1
run_quickstart 8 t8

# The trace must be valid JSON with at least one complete ("X") event, and
# the metrics snapshot valid JSON with a non-empty counters section.
# python3 is the arbiter when present; otherwise grep for the load-bearing
# parts of the schema.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]
trace = json.load(open(f"{workdir}/trace_t8.json"))
events = trace["traceEvents"]
assert events, "trace has no events"
assert all(e["ph"] == "X" for e in events), "unexpected event phase"
assert {"name", "ts", "dur", "pid", "tid"} <= set(events[0]), "missing keys"
metrics = json.load(open(f"{workdir}/metrics_t8.json"))
assert metrics["counters"], "metrics snapshot has no counters"
print(f"trace OK ({len(events)} events), "
      f"metrics OK ({len(metrics['counters'])} counters)")
EOF
else
  grep -q '"traceEvents"' "$workdir/trace_t8.json"
  grep -q '"ph": "X"' "$workdir/trace_t8.json"
  grep -q '"counters"' "$workdir/metrics_t8.json"
  grep -qE '": [0-9]+,?$' "$workdir/metrics_t8.json"
  echo "trace and metrics snapshots look structurally sound (no python3)"
fi

# Determinism: the counters section (snapshot JSON is one key per line,
# so sed can slice it) must not depend on the thread count.
counters() { sed -n '/"counters"/,/},/p' "$1"; }
if ! diff <(counters "$workdir/metrics_t1.json") \
          <(counters "$workdir/metrics_t8.json"); then
  echo "FAIL: counters differ between --threads=1 and --threads=8" >&2
  exit 1
fi
echo "counters identical at --threads=1 and --threads=8"
echo "observability checks passed"
