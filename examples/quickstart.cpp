// Quickstart: generate a small Ciao-like social network, train AHNTP, and
// predict trust for a few user pairs.
//
//   ./build/examples/quickstart [--scale 0.05] [--epochs 30]
//
// Also honors the shared runtime flags (--threads, --metrics_out,
// --trace_out, --fault_spec; see common/flags.h), which makes it the
// smallest end-to-end pipeline for exercising the observability layer.

#include <cstdio>

#include "common/flags.h"
#include "core/experiment.h"
#include "core/model_zoo.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/generator.h"
#include "nn/serialization.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  ApplyRuntimeFlags(flags);
  const double scale = flags.GetDouble("scale", 0.05);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 30));

  // 1. Generate a dataset shaped like Ciao (Table III), scaled down.
  data::GeneratorConfig gen_config = data::GeneratorConfig::CiaoLike(scale);
  data::SocialDataset dataset =
      data::SocialNetworkGenerator(gen_config).Generate();
  data::DatasetStatistics stats = data::ComputeStatistics(dataset);
  std::printf("dataset: %zu users, %zu items, %zu purchases, %zu trust "
              "relations (density %.5f%%)\n",
              stats.num_users, stats.num_items, stats.num_purchases,
              stats.num_trust_relations, stats.trust_density * 100.0);

  // 2. Train AHNTP with the paper's defaults (scaled-down epochs).
  core::ExperimentConfig config;
  config.model = "AHNTP";
  config.hidden_dims = {64, 32, 16};
  config.trainer.epochs = epochs;
  config.trainer.verbose = true;
  auto result = core::RunExperiment(dataset, config);
  AHNTP_CHECK(result.ok()) << result.status().ToString();

  std::printf("\nAHNTP (%zu parameters, %.1fs setup, %.1fs train)\n",
              result->num_parameters, result->setup_seconds,
              result->train_seconds);
  std::printf("  train: %s\n", result->train.ToString().c_str());
  std::printf("  test:  %s\n", result->test.ToString().c_str());

  // 3. Checkpointing demo with the lower-level API: train a small model,
  //    save it, reload into a freshly-initialized clone, verify identical
  //    predictions.
  data::TrustSplit split = data::MakeSplit(dataset);
  auto train_graph = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK(train_graph.ok());
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);
  Rng rng(1);
  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &train_graph.value();
  inputs.dataset = &dataset;
  inputs.hidden_dims = {16, 8};
  inputs.rng = &rng;
  auto spec = core::CreateEncoder("AHNTP", inputs, core::AhntpConfig{});
  AHNTP_CHECK(spec.ok());
  models::TrustPredictor model(spec->encoder, models::TrustPredictorConfig{},
                               &rng);
  core::TrainerConfig tc;
  tc.epochs = 10;
  AHNTP_CHECK(core::Trainer(tc).Fit(&model, split.train_pairs).ok());

  const std::string checkpoint = "/tmp/ahntp_quickstart.ckpt";
  AHNTP_CHECK_OK(nn::SaveModule(model, checkpoint));
  Rng rng2(777);  // deliberately different init
  inputs.rng = &rng2;
  auto spec2 = core::CreateEncoder("AHNTP", inputs, core::AhntpConfig{});
  models::TrustPredictor restored(spec2->encoder,
                                  models::TrustPredictorConfig{}, &rng2);
  AHNTP_CHECK_OK(nn::LoadModule(&restored, checkpoint));
  std::vector<data::TrustPair> sample(split.test_pairs.begin(),
                                      split.test_pairs.begin() + 5);
  auto p1 = model.PredictProbabilities(sample);
  auto p2 = restored.PredictProbabilities(sample);
  bool identical = true;
  for (size_t i = 0; i < sample.size(); ++i) {
    identical = identical && p1[i] == p2[i];
  }
  std::printf("\ncheckpoint round-trip (%s): restored model predictions %s\n",
              checkpoint.c_str(), identical ? "identical" : "DIFFER (bug!)");
  return identical ? 0 : 1;
}
