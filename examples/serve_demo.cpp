// serve_demo: drives the online inference substrate (src/serve) end to end
// and verifies its robustness invariants — overload backpressure, deadline
// expiry, deterministic retry/backoff under injected faults, circuit
// breaker trip/probe/recover with degraded-mode fallback, corrupt
// checkpoint hot-reload, the overload-control layer (priority
// admission lanes, request coalescing, generation-keyed score cache), and
// the dynamic write lane (graph deltas applied between batches with
// generation-keyed cache invalidation) — exiting non-zero if any
// invariant breaks.
//
//   ./build/examples/serve_demo --serve_requests=96
//       --serve_queue_capacity=48 --serve_batch=8
//       --strict_reserve=12 --score_cache_entries=256
//       --fault_spec='serve.infer@~0.75' --fault_seed=42 --threads=8
//
// Run closed-loop (all requests enqueued before the dispatcher starts), so
// batch composition — and with it every serve counter and score — is
// bit-identical at any --threads=N for a fixed --fault_seed. The shared
// runtime flags (--threads, --fault_spec, --fault_seed, --metrics_out,
// --trace_out) apply as everywhere else; see common/flags.h.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/fileio.h"
#include "common/flags.h"
#include "core/dynamic_pipeline.h"
#include "core/model_zoo.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/split.h"
#include "graph/delta.h"
#include "models/uncertainty.h"
#include "nn/serialization.h"
#include "serve/admission.h"
#include "serve/backend.h"
#include "serve/dynamic.h"
#include "serve/score_cache.h"
#include "serve/server.h"

namespace {

using namespace ahntp;

int g_violations = 0;

void Expect(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

/// Accumulates per-phase server stats into one run total.
serve::ServerStats Add(const serve::ServerStats& a,
                       const serve::ServerStats& b) {
  serve::ServerStats s;
  s.submitted = a.submitted + b.submitted;
  s.rejected = a.rejected + b.rejected;
  s.expired = a.expired + b.expired;
  s.ok = a.ok + b.ok;
  s.degraded = a.degraded + b.degraded;
  s.failed = a.failed + b.failed;
  s.retries = a.retries + b.retries;
  s.nonfinite = a.nonfinite + b.nonfinite;
  s.batches = a.batches + b.batches;
  s.breaker_trips = a.breaker_trips + b.breaker_trips;
  s.breaker_probes = a.breaker_probes + b.breaker_probes;
  s.breaker_recoveries = a.breaker_recoveries + b.breaker_recoveries;
  for (int lane = 0; lane < serve::kNumLanes; ++lane) {
    s.lane_admitted[lane] = a.lane_admitted[lane] + b.lane_admitted[lane];
    s.lane_rejected[lane] = a.lane_rejected[lane] + b.lane_rejected[lane];
  }
  s.downgraded = a.downgraded + b.downgraded;
  s.coalesced = a.coalesced + b.coalesced;
  s.coalesced_expired = a.coalesced_expired + b.coalesced_expired;
  s.cache_hits = a.cache_hits + b.cache_hits;
  s.cache_misses = a.cache_misses + b.cache_misses;
  s.cache_flushes = a.cache_flushes + b.cache_flushes;
  s.abstained = a.abstained + b.abstained;
  s.mutations_submitted = a.mutations_submitted + b.mutations_submitted;
  s.mutations_rejected = a.mutations_rejected + b.mutations_rejected;
  s.mutations_applied = a.mutations_applied + b.mutations_applied;
  s.mutations_failed = a.mutations_failed + b.mutations_failed;
  return s;
}

/// FNV-1a over the deterministic response fields (status code, the
/// abstained/degraded/cached/coalesced flags, score and confidence bits);
/// wall-clock latency is deliberately excluded so the digest matches at
/// any --threads=N.
uint64_t FoldResponse(uint64_t h, const serve::TrustResponse& r) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto byte = [&](uint8_t b) { h = (h ^ b) * kPrime; };
  byte(static_cast<uint8_t>(r.status.code()));
  byte(static_cast<uint8_t>((r.abstained << 3) | (r.degraded << 2) |
                            (r.cached << 1) | r.coalesced));
  uint32_t bits = 0;
  if (r.status.ok()) std::memcpy(&bits, &r.score, sizeof(bits));
  for (int shift = 0; shift < 32; shift += 8) {
    byte(static_cast<uint8_t>(bits >> shift));
  }
  uint32_t conf_bits = 0;
  std::memcpy(&conf_bits, &r.confidence, sizeof(conf_bits));
  for (int shift = 0; shift < 32; shift += 8) {
    byte(static_cast<uint8_t>(conf_bits >> shift));
  }
  return h;
}

/// FNV-1a over the deterministic fields of a mutation response: status
/// code, generation, and the receipt's bookkeeping counts. Latency is
/// excluded for the same reason as in FoldResponse.
uint64_t FoldMutation(uint64_t h, const serve::MutationResponse& r) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto fold64 = [&](uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h = (h ^ static_cast<uint8_t>(v >> shift)) * kPrime;
    }
  };
  h = (h ^ static_cast<uint8_t>(r.status.code())) * kPrime;
  fold64(static_cast<uint64_t>(r.generation));
  fold64(r.receipt.edges_added);
  fold64(r.receipt.edges_removed);
  fold64(r.receipt.adds_ignored);
  fold64(r.receipt.removes_ignored);
  fold64(r.receipt.rating_rows);
  fold64(r.receipt.touched_vertices.size());
  return h;
}

/// Every response must be terminal and self-consistent regardless of which
/// path (ok / degraded / expired / rejected / failed) produced it.
void CheckResponses(std::vector<std::future<serve::TrustResponse>>* futures,
                    std::vector<serve::TrustResponse>* out) {
  for (auto& future : *futures) {
    serve::TrustResponse response = future.get();
    if (response.status.ok()) {
      Expect(std::isfinite(response.score),
             "an OK response must carry a finite score");
    } else {
      Expect(response.status.code() == StatusCode::kResourceExhausted ||
                 response.status.code() == StatusCode::kDeadlineExceeded ||
                 response.status.code() == StatusCode::kUnavailable ||
                 response.status.code() == StatusCode::kIoError ||
                 response.status.code() == StatusCode::kInternal ||
                 response.status.code() == StatusCode::kFailedPrecondition,
             "failed responses must carry a recognized Status code");
      Expect(!response.degraded, "a failed response cannot be degraded=true");
    }
    out->push_back(std::move(response));
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  const int threads = ApplyRuntimeFlags(flags);

  const int requests = static_cast<int>(flags.GetInt("serve_requests", 96));
  const size_t capacity =
      static_cast<size_t>(flags.GetInt("serve_queue_capacity", 48));
  const int expired_every =
      static_cast<int>(flags.GetInt("serve_expired_every", 8));
  const uint64_t model_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string checkpoint =
      flags.GetString("serve_checkpoint", "/tmp/ahntp_serve_demo.ckpt");
  const int train_epochs =
      static_cast<int>(flags.GetInt("serve_train_epochs", 0));
  const size_t strict_reserve = static_cast<size_t>(flags.GetInt(
      "strict_reserve", static_cast<int64_t>(capacity) / 4));
  const size_t score_cache_entries =
      static_cast<size_t>(flags.GetInt("score_cache_entries", 256));

  serve::ServeOptions options;
  options.queue_capacity = capacity;
  options.max_batch_size =
      static_cast<size_t>(flags.GetInt("serve_batch", 8));
  options.retry.max_attempts =
      static_cast<int>(flags.GetInt("serve_retry_attempts", 3));
  options.retry.base_delay_ms = flags.GetDouble("serve_backoff_ms", 0.25);
  options.retry.max_delay_ms = flags.GetDouble("serve_backoff_max_ms", 4.0);
  options.retry.seed = static_cast<uint64_t>(flags.GetInt("fault_seed", 0));
  options.breaker.failure_threshold =
      static_cast<int>(flags.GetInt("serve_breaker_threshold", 2));
  options.breaker.probe_interval =
      static_cast<int>(flags.GetInt("serve_probe_interval", 3));

  // --- Model, fallback, and checkpoints -----------------------------------
  data::GeneratorConfig gen_config =
      data::GeneratorConfig::CiaoLike(flags.GetDouble("scale", 0.03));
  data::SocialDataset dataset =
      data::SocialNetworkGenerator(gen_config).Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto train_graph = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK(train_graph.ok()) << train_graph.status().ToString();
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &train_graph.value();
  inputs.dataset = &dataset;
  inputs.hidden_dims = {16, 8};

  // Architecture-identical instances from a fixed seed: the initial model
  // and every hot-reload staging clone.
  auto make_model = [inputs, model_seed]() mutable {
    Rng rng(model_seed);
    inputs.rng = &rng;
    auto created =
        core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
    AHNTP_CHECK(created.ok()) << created.status().ToString();
    return std::move(created).value();
  };
  auto initial = make_model();
  if (train_epochs > 0) {
    core::TrainerConfig tc;
    tc.epochs = train_epochs;
    auto trained = core::Trainer(tc).Fit(initial.get(), split.train_pairs);
    AHNTP_CHECK(trained.ok()) << trained.status().ToString();
  }
  AHNTP_CHECK_OK(nn::SaveModule(*initial, checkpoint));

  // A corrupt sibling: one bit flipped mid-payload, which the v2 loader's
  // CRC32 must reject during hot-reload.
  std::string image;
  AHNTP_CHECK_OK(ReadFileToString(checkpoint, &image));
  std::string corrupted = image;
  corrupted[corrupted.size() / 2] ^= 0x10;
  const std::string corrupt_checkpoint = checkpoint + ".corrupt";
  AHNTP_CHECK_OK(WriteFileAtomic(corrupt_checkpoint, corrupted));

  serve::ModelBackend primary(make_model, std::move(initial));
  serve::HeuristicBackend fallback(&train_graph.value(),
                                   models::Heuristic::kJaccard);

  std::printf("serve_demo: %d requests, queue capacity %zu, batch %zu, "
              "threads %d\n",
              requests, capacity, options.max_batch_size, threads);

  // Deterministic query stream: cycle over the held-out test pairs.
  auto query_at = [&](int i) {
    const data::TrustPair& p =
        split.test_pairs[static_cast<size_t>(i) % split.test_pairs.size()];
    serve::TrustQuery q;
    q.src = p.src;
    q.dst = p.dst;
    return q;
  };

  // --- Phase 1: overload backpressure + deadline expiry -------------------
  // All requests are submitted before Start(), so exactly `capacity` are
  // accepted and the rest rejected, and every `expired_every`th accepted
  // request carries an already-expired deadline.
  serve::ServerStats phase1;
  int expected_expired = 0;
  {
    serve::TrustServer server(options, &primary, &fallback);
    std::vector<std::future<serve::TrustResponse>> futures;
    for (int i = 0; i < requests; ++i) {
      serve::TrustQuery q = query_at(i);
      if (static_cast<size_t>(i) < capacity &&
          expired_every > 0 && (i + 1) % expired_every == 0) {
        q.deadline = Deadline::AfterMillis(0);
        ++expected_expired;
      }
      futures.push_back(server.Submit(q));
    }
    server.Start();
    std::vector<serve::TrustResponse> responses;
    CheckResponses(&futures, &responses);
    server.Shutdown();
    phase1 = server.Stats();

    const int expected_rejected =
        requests > static_cast<int>(capacity)
            ? requests - static_cast<int>(capacity)
            : 0;
    Expect(phase1.rejected == expected_rejected,
           "overload must reject exactly the overflow beyond queue capacity");
    int rejected_seen = 0;
    for (const auto& r : responses) {
      if (r.status.code() == StatusCode::kResourceExhausted) ++rejected_seen;
    }
    Expect(rejected_seen == expected_rejected,
           "every rejected request must surface ResourceExhausted");
    Expect(phase1.expired == expected_expired,
           "every expired-deadline request must surface DeadlineExceeded");
    std::printf("phase 1 (overload): rejected %lld/%d, expired %lld\n",
                static_cast<long long>(phase1.rejected), requests,
                static_cast<long long>(phase1.expired));
  }

  // --- Phase 2: faults, breaker, degraded mode, hot reload ----------------
  serve::ServerStats phase2;
  int64_t reload_failures = 0;
  int64_t reload_success = 0;
  std::vector<serve::TrustResponse> wave2;
  {
    // Each wave runs closed-loop on its own server (all requests enqueued
    // before Start), which pins batch composition: submitting into a live
    // dispatcher would make batch boundaries — and with them the
    // fault-site alignment — timing-dependent.
    serve::ServeOptions open_options = options;
    open_options.queue_capacity = static_cast<size_t>(requests) + 8;
    std::vector<serve::TrustResponse> wave1;
    {
      serve::TrustServer server(open_options, &primary, &fallback);
      std::vector<std::future<serve::TrustResponse>> futures;
      for (int i = 0; i < requests; ++i) {
        futures.push_back(server.Submit(query_at(i)));
      }
      server.Start();
      CheckResponses(&futures, &wave1);
      server.Shutdown();
      phase2 = server.Stats();
    }

    // Hot reload between waves: the corrupt checkpoint must be rejected
    // with the old weights kept; the pristine one must swap in.
    const int64_t generation_before = primary.generation();
    Status corrupt_reload = primary.Reload(corrupt_checkpoint);
    Expect(!corrupt_reload.ok(),
           "reloading a bit-flipped checkpoint must fail");
    Expect(primary.generation() == generation_before,
           "a failed reload must keep the old model generation");
    if (!corrupt_reload.ok()) ++reload_failures;
    Status good_reload = primary.Reload(checkpoint);
    Expect(good_reload.ok(), "reloading the pristine checkpoint must work");
    Expect(primary.generation() == generation_before + 1,
           "a successful reload must advance the model generation");
    if (good_reload.ok()) ++reload_success;

    // Second wave against the reloaded model (fresh server, fresh breaker).
    {
      serve::TrustServer server(open_options, &primary, &fallback);
      std::vector<std::future<serve::TrustResponse>> futures;
      for (int i = 0; i < requests / 2; ++i) {
        futures.push_back(server.Submit(query_at(i)));
      }
      server.Start();
      CheckResponses(&futures, &wave2);
      server.Shutdown();
      phase2 = Add(phase2, server.Stats());
    }

    for (const auto& r : wave1) {
      if (r.status.ok() && r.degraded) {
        Expect(std::isfinite(r.score),
               "degraded responses must carry finite heuristic scores");
      }
    }
    std::printf(
        "phase 2 (faults): retries %lld, trips %lld, probes %lld, "
        "recoveries %lld, degraded %lld, reload failures %lld\n",
        static_cast<long long>(phase2.retries),
        static_cast<long long>(phase2.breaker_trips),
        static_cast<long long>(phase2.breaker_probes),
        static_cast<long long>(phase2.breaker_recoveries),
        static_cast<long long>(phase2.degraded),
        static_cast<long long>(reload_failures));
  }

  // --- Phase 3: overload control — lanes, coalescing, score cache ---------
  // Two closed-loop waves of a multi-tenant mix (steady strict tenant,
  // bursty degraded-eligible tenants, hot-key best-effort tenant) at 2x
  // queue capacity each, sharing one score cache so wave 2 is absorbed by
  // wave 1's fills. One follower per wave carries an already-expired
  // deadline onto a hot key to exercise the coalesced-expiry path.
  serve::ServerStats phase3;
  uint64_t lanes_digest = 1469598103934665603ULL;  // FNV-1a offset basis
  {
    serve::ServeOptions lane_options = options;
    lane_options.admission.strict_reserve = strict_reserve;
    lane_options.coalesce = true;
    serve::ScoreCache cache(score_cache_entries);
    lane_options.shared_score_cache = &cache;

    auto lane_for = [](int i) {
      switch (i % 4) {
        case 0: return serve::Lane::kStrict;
        case 3: return serve::Lane::kBesteffort;
        default: return serve::Lane::kDegradedEligible;
      }
    };
    auto lane_query = [&](int i) {
      // The best-effort tenant hammers six hot keys; everyone else cycles
      // the test pairs. Index-only mapping, so wave 2 repeats wave 1.
      serve::TrustQuery q = lane_for(i) == serve::Lane::kBesteffort
                                ? query_at((i / 4) % 6)
                                : query_at(i);
      q.lane = lane_for(i);
      return q;
    };

    const int per_wave = 2 * static_cast<int>(capacity);
    for (int wave = 0; wave < 2; ++wave) {
      serve::TrustServer server(lane_options, &primary, &fallback);
      std::vector<std::future<serve::TrustResponse>> futures;
      for (int i = 0; i < per_wave; ++i) {
        futures.push_back(server.Submit(lane_query(i)));
      }
      serve::TrustQuery expired_follower = lane_query(3);  // a hot key
      expired_follower.deadline = Deadline::AfterMillis(0);
      futures.push_back(server.Submit(expired_follower));
      server.Start();
      std::vector<serve::TrustResponse> responses;
      CheckResponses(&futures, &responses);
      server.Shutdown();
      phase3 = Add(phase3, server.Stats());
      for (const auto& r : responses) {
        lanes_digest = FoldResponse(lanes_digest, r);
      }
    }

    Expect(phase3.lane_rejected[static_cast<int>(serve::Lane::kStrict)] == 0,
           "the strict reservation must shed no strict traffic at 2x load");
    Expect(phase3.coalesced > 0,
           "hot-key duplicates must coalesce onto in-flight leaders");
    Expect(phase3.coalesced_expired >= 1,
           "an expired follower must resolve DeadlineExceeded while "
           "coalesced");
    Expect(phase3.cache_hits > 0,
           "the repeat wave must be partially absorbed by the score cache");
    Expect(phase3.lane_rejected[static_cast<int>(
               serve::Lane::kBesteffort)] +
                   phase3.coalesced + phase3.cache_hits >
               0,
           "the best-effort lane must shed, coalesce, or hit cache first");
    std::printf(
        "phase 3 (lanes): admitted s/d/b %lld/%lld/%lld, rejected s/d/b "
        "%lld/%lld/%lld, downgraded %lld, coalesced %lld, cache hits %lld\n",
        static_cast<long long>(
            phase3.lane_admitted[static_cast<int>(serve::Lane::kStrict)]),
        static_cast<long long>(phase3.lane_admitted[static_cast<int>(
            serve::Lane::kDegradedEligible)]),
        static_cast<long long>(
            phase3.lane_admitted[static_cast<int>(serve::Lane::kBesteffort)]),
        static_cast<long long>(
            phase3.lane_rejected[static_cast<int>(serve::Lane::kStrict)]),
        static_cast<long long>(phase3.lane_rejected[static_cast<int>(
            serve::Lane::kDegradedEligible)]),
        static_cast<long long>(
            phase3.lane_rejected[static_cast<int>(serve::Lane::kBesteffort)]),
        static_cast<long long>(phase3.downgraded),
        static_cast<long long>(phase3.coalesced),
        static_cast<long long>(phase3.cache_hits));
  }

  // --- Phase 4: uncertainty + abstain-aware serving -----------------------
  // A seed ensemble (3 init seeds + 2 MC-dropout samples of the canonical
  // member) serves behind an EnsembleBackend with min_confidence set to the
  // median of the ensemble's own confidence distribution over the query
  // stream — roughly half the keys abstain and reroute to the heuristic
  // fallback. Two closed-loop waves share a score cache: confident scores
  // are absorbed by the cache in wave 2, abstained keys are recomputed (and
  // abstain again), which the wave-symmetry invariant below pins.
  serve::ServerStats phase4;
  uint64_t conf_digest = 1469598103934665603ULL;  // FNV-1a offset basis
  float abstain_threshold = 0.0f;
  {
    // Phases 2-3 own the fault-recovery interplay; this phase pins the
    // abstain partition and its wave symmetry, which an externally
    // injected serve.infer fault stream would perturb (a faulted batch
    // degrades without abstaining, and the draws differ across waves).
    fault::Disable();
    std::vector<std::shared_ptr<models::TrustPredictor>> members;
    for (uint64_t m = 0; m < 3; ++m) {
      Rng rng(model_seed + m);
      models::ModelInputs member_inputs = inputs;
      member_inputs.rng = &rng;
      auto created =
          core::CreatePredictor("AHNTP", member_inputs, core::AhntpConfig{});
      AHNTP_CHECK(created.ok()) << created.status().ToString();
      members.push_back(std::move(created).value());
    }
    models::EnsembleOptions ens_options;
    ens_options.tau = 0.05;
    ens_options.mc_dropout_samples = 2;
    ens_options.mc_dropout_rate = 0.15f;
    auto ensemble = std::make_shared<models::SeedEnsemble>(std::move(members),
                                                           ens_options);

    const int per_wave = 2 * static_cast<int>(capacity);
    std::vector<data::TrustPair> probe_pairs;
    for (int i = 0; i < per_wave; ++i) {
      serve::TrustQuery q = query_at(i);
      probe_pairs.push_back({q.src, q.dst, 0.0f});
    }
    models::SeedEnsemble::Scored probe = ensemble->Score(probe_pairs);
    std::vector<float> sorted_conf = probe.confidence;
    std::sort(sorted_conf.begin(), sorted_conf.end());
    abstain_threshold = sorted_conf[sorted_conf.size() / 2];

    serve::EnsembleBackend ensemble_backend(ensemble);
    serve::ServeOptions conf_options = options;
    conf_options.queue_capacity = static_cast<size_t>(per_wave) + 8;
    conf_options.min_confidence = abstain_threshold;
    serve::ScoreCache cache(score_cache_entries);
    conf_options.shared_score_cache = &cache;

    serve::ServerStats waves[2];
    for (int wave = 0; wave < 2; ++wave) {
      serve::TrustServer server(conf_options, &ensemble_backend, &fallback);
      std::vector<std::future<serve::TrustResponse>> futures;
      for (int i = 0; i < per_wave; ++i) {
        futures.push_back(server.Submit(query_at(i)));
      }
      server.Start();
      std::vector<serve::TrustResponse> responses;
      CheckResponses(&futures, &responses);
      server.Shutdown();
      waves[wave] = server.Stats();
      phase4 = Add(phase4, waves[wave]);
      for (const auto& r : responses) {
        conf_digest = FoldResponse(conf_digest, r);
        if (r.abstained) {
          Expect(r.degraded,
                 "with a fallback configured, abstained responses must be "
                 "served degraded");
          Expect(r.status.ok() && std::isfinite(r.score),
                 "abstained responses must carry finite fallback scores");
          Expect(r.confidence < abstain_threshold,
                 "abstained responses must report the rejected confidence");
        } else if (r.status.ok() && !r.degraded) {
          Expect(r.confidence >= abstain_threshold,
                 "served primary scores must meet the confidence threshold");
        }
      }
    }

    Expect(phase4.abstained > 0,
           "the median threshold must make some requests abstain");
    Expect(phase4.ok > 0,
           "confident requests must still be served by the primary");
    Expect(waves[1].cache_hits > 0,
           "wave 2 must absorb confident repeats from the score cache");
    Expect(waves[0].abstained == waves[1].abstained,
           "abstained scores must not be cached: wave 2 must abstain "
           "exactly like wave 1");
    std::printf(
        "phase 4 (abstain): threshold %.4f, abstained %lld, ok %lld, "
        "degraded %lld, cache hits %lld\n",
        static_cast<double>(abstain_threshold),
        static_cast<long long>(phase4.abstained),
        static_cast<long long>(phase4.ok),
        static_cast<long long>(phase4.degraded),
        static_cast<long long>(phase4.cache_hits));
  }

  // --- Phase 5: dynamic mutations — write lane + delta invalidation -------
  // Interleaved read/write traffic against a DynamicBackend: segments of
  // reads separated by graph deltas, all enqueued closed-loop so segment
  // composition — and with it every score, generation observation, and
  // cache flush — is bit-identical at any --threads=N. After the last
  // mutation the first segment's keys are re-read: same keys, newer
  // generation, so the score cache must flush rather than serve stale
  // scores.
  serve::ServerStats phase5;
  uint64_t mut_digest = 1469598103934665603ULL;  // FNV-1a offset basis
  int64_t final_generation = 0;
  {
    // Phase 2 owns the fault-recovery interplay; an injected serve.infer
    // stream here would fold retry noise into the mutation digest.
    fault::Disable();
    core::DynamicPipelineOptions dyn_options;
    dyn_options.model.hidden_dims = {16, 8};
    auto pipeline = core::DynamicTrustPipeline::Create(dataset, dyn_options);
    AHNTP_CHECK(pipeline.ok()) << pipeline.status().ToString();
    serve::DynamicBackend dynamic_backend(&pipeline.value());

    data::DeltaStreamConfig delta_config;
    delta_config.num_deltas =
        static_cast<size_t>(flags.GetInt("serve_mutations", 4));
    std::vector<graph::GraphDelta> deltas =
        data::GenerateTrustDeltas(dataset, delta_config);

    const int reads_per_segment =
        static_cast<int>(flags.GetInt("serve_mutation_segment", 8));
    serve::ServeOptions dyn_serve = options;
    dyn_serve.queue_capacity =
        static_cast<size_t>(reads_per_segment) * (deltas.size() + 2) +
        deltas.size() + 8;
    serve::ScoreCache cache(score_cache_entries);
    dyn_serve.shared_score_cache = &cache;

    serve::TrustServer server(dyn_serve, &dynamic_backend, &fallback,
                              &dynamic_backend);
    std::vector<std::future<serve::TrustResponse>> read_futures;
    std::vector<std::future<serve::MutationResponse>> mut_futures;
    int qi = 0;
    for (const graph::GraphDelta& delta : deltas) {
      for (int r = 0; r < reads_per_segment; ++r) {
        read_futures.push_back(server.Submit(query_at(qi++)));
      }
      mut_futures.push_back(server.SubmitMutation(delta));
    }
    // Re-read the first segment's keys at the final generation.
    for (int r = 0; r < reads_per_segment; ++r) {
      read_futures.push_back(server.Submit(query_at(r)));
    }
    server.Start();
    std::vector<serve::TrustResponse> responses;
    CheckResponses(&read_futures, &responses);
    std::vector<serve::MutationResponse> mut_responses;
    for (auto& f : mut_futures) mut_responses.push_back(f.get());
    server.Shutdown();
    phase5 = server.Stats();

    int64_t expected_generation = 0;
    for (const auto& m : mut_responses) {
      Expect(m.status.ok(), "every submitted mutation must apply");
      ++expected_generation;
      Expect(m.generation == expected_generation,
             "mutations must observe sequential graph generations");
      mut_digest = FoldMutation(mut_digest, m);
    }
    for (const auto& r : responses) {
      mut_digest = FoldResponse(mut_digest, r);
    }
    final_generation = pipeline.value().generation();
    Expect(final_generation == static_cast<int64_t>(deltas.size()),
           "the store generation must equal the number of applied deltas");
    Expect(phase5.mutations_applied ==
               static_cast<int64_t>(deltas.size()),
           "every mutation must be counted applied");
    Expect(phase5.mutations_submitted - phase5.mutations_rejected ==
               phase5.mutations_applied + phase5.mutations_failed,
           "accepted mutations must partition into applied+failed");
    Expect(phase5.cache_flushes >= 1,
           "a generation bump across a read segment must flush the cache");
    std::printf(
        "phase 5 (mutations): reads %lld, mutations %lld, applied %lld, "
        "generation %lld, cache flushes %lld\n",
        static_cast<long long>(phase5.submitted),
        static_cast<long long>(phase5.mutations_submitted),
        static_cast<long long>(phase5.mutations_applied),
        static_cast<long long>(final_generation),
        static_cast<long long>(phase5.cache_flushes));
  }

  // --- Summary + invariants ------------------------------------------------
  serve::ServerStats total =
      Add(Add(Add(Add(phase1, phase2), phase3), phase4), phase5);
  const int64_t accepted = total.submitted - total.rejected;
  Expect(accepted == total.expired + total.ok + total.degraded + total.failed,
         "accepted requests must partition into expired+ok+degraded+failed");

  // Deterministic digest lines for scripts/check_serve.sh: counters, then
  // the first second-wave scores in hexfloat (bit-exact across thread
  // counts). Wall-clock fields (latency) are deliberately excluded.
  std::printf(
      "SERVE_SUMMARY {\"submitted\": %lld, \"rejected\": %lld, "
      "\"expired\": %lld, \"ok\": %lld, \"degraded\": %lld, "
      "\"failed\": %lld, \"retries\": %lld, \"nonfinite\": %lld, "
      "\"batches\": %lld, \"breaker_trips\": %lld, \"breaker_probes\": %lld, "
      "\"breaker_recoveries\": %lld, \"reload_failures\": %lld, "
      "\"reload_success\": %lld, \"downgraded\": %lld, \"coalesced\": %lld, "
      "\"coalesced_expired\": %lld, \"cache_hits\": %lld, "
      "\"cache_misses\": %lld, \"cache_flushes\": %lld}\n",
      static_cast<long long>(total.submitted),
      static_cast<long long>(total.rejected),
      static_cast<long long>(total.expired),
      static_cast<long long>(total.ok),
      static_cast<long long>(total.degraded),
      static_cast<long long>(total.failed),
      static_cast<long long>(total.retries),
      static_cast<long long>(total.nonfinite),
      static_cast<long long>(total.batches),
      static_cast<long long>(total.breaker_trips),
      static_cast<long long>(total.breaker_probes),
      static_cast<long long>(total.breaker_recoveries),
      static_cast<long long>(reload_failures),
      static_cast<long long>(reload_success),
      static_cast<long long>(total.downgraded),
      static_cast<long long>(total.coalesced),
      static_cast<long long>(total.coalesced_expired),
      static_cast<long long>(total.cache_hits),
      static_cast<long long>(total.cache_misses),
      static_cast<long long>(total.cache_flushes));
  std::printf(
      "SERVE_LANES {\"strict_admitted\": %lld, \"strict_rejected\": %lld, "
      "\"degraded_admitted\": %lld, \"degraded_rejected\": %lld, "
      "\"besteffort_admitted\": %lld, \"besteffort_rejected\": %lld, "
      "\"downgraded\": %lld, \"coalesced\": %lld, "
      "\"coalesced_expired\": %lld, \"cache_hits\": %lld, "
      "\"cache_misses\": %lld, \"cache_flushes\": %lld, "
      "\"digest\": \"%016llx\"}\n",
      static_cast<long long>(
          phase3.lane_admitted[static_cast<int>(serve::Lane::kStrict)]),
      static_cast<long long>(
          phase3.lane_rejected[static_cast<int>(serve::Lane::kStrict)]),
      static_cast<long long>(phase3.lane_admitted[static_cast<int>(
          serve::Lane::kDegradedEligible)]),
      static_cast<long long>(phase3.lane_rejected[static_cast<int>(
          serve::Lane::kDegradedEligible)]),
      static_cast<long long>(
          phase3.lane_admitted[static_cast<int>(serve::Lane::kBesteffort)]),
      static_cast<long long>(
          phase3.lane_rejected[static_cast<int>(serve::Lane::kBesteffort)]),
      static_cast<long long>(phase3.downgraded),
      static_cast<long long>(phase3.coalesced),
      static_cast<long long>(phase3.coalesced_expired),
      static_cast<long long>(phase3.cache_hits),
      static_cast<long long>(phase3.cache_misses),
      static_cast<long long>(phase3.cache_flushes),
      static_cast<unsigned long long>(lanes_digest));
  std::printf(
      "SERVE_CONF {\"threshold\": \"%a\", \"abstained\": %lld, \"ok\": %lld, "
      "\"degraded\": %lld, \"failed\": %lld, \"cache_hits\": %lld, "
      "\"cache_misses\": %lld, \"digest\": \"%016llx\"}\n",
      static_cast<double>(abstain_threshold),
      static_cast<long long>(phase4.abstained),
      static_cast<long long>(phase4.ok),
      static_cast<long long>(phase4.degraded),
      static_cast<long long>(phase4.failed),
      static_cast<long long>(phase4.cache_hits),
      static_cast<long long>(phase4.cache_misses),
      static_cast<unsigned long long>(conf_digest));
  std::printf(
      "SERVE_MUT {\"reads\": %lld, \"mutations\": %lld, \"applied\": %lld, "
      "\"failed\": %lld, \"generation\": %lld, \"cache_hits\": %lld, "
      "\"cache_misses\": %lld, \"cache_flushes\": %lld, "
      "\"digest\": \"%016llx\"}\n",
      static_cast<long long>(phase5.submitted),
      static_cast<long long>(phase5.mutations_submitted),
      static_cast<long long>(phase5.mutations_applied),
      static_cast<long long>(phase5.mutations_failed),
      static_cast<long long>(final_generation),
      static_cast<long long>(phase5.cache_hits),
      static_cast<long long>(phase5.cache_misses),
      static_cast<long long>(phase5.cache_flushes),
      static_cast<unsigned long long>(mut_digest));
  std::printf("SERVE_SCORES");
  for (size_t i = 0; i < wave2.size() && i < 8; ++i) {
    std::printf(" %a%s", static_cast<double>(wave2[i].score),
                wave2[i].degraded ? "d" : "");
  }
  std::printf("\n");

  if (g_violations > 0) {
    std::fprintf(stderr, "serve_demo: %d invariant violation(s)\n",
                 g_violations);
    return 1;
  }
  std::printf("serve_demo: all invariants held\n");
  return 0;
}
