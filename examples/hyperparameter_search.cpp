// Hyperparameter search: a small grid over AHNTP's key knobs (alpha,
// temperature, social top-K) using seed-averaged runs, reporting the best
// configuration by validation-calibrated test accuracy. Demonstrates
// core::RunRepeatedExperiment as experiment tooling.
//
//   ./build/examples/hyperparameter_search [--scale=0.05] [--seeds=2]
//       [--epochs=150]

#include <cstdio>

#include "common/flags.h"
#include "core/repeated.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  const double scale = flags.GetDouble("scale", 0.05);
  const int seeds = static_cast<int>(flags.GetInt("seeds", 2));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 150));

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::CiaoLike(scale))
          .Generate();
  std::printf("grid search on %zu users, %d seed(s) per cell\n\n",
              dataset.num_users, seeds);

  struct Candidate {
    double alpha;
    float temperature;
    int top_k;
  };
  std::vector<Candidate> grid;
  for (double alpha : {0.6, 0.8}) {
    for (float t : {0.2f, 0.3f}) {
      for (int k : {5, 10}) grid.push_back({alpha, t, k});
    }
  }

  std::printf("%-7s %-6s %-6s | %-16s | %-16s\n", "alpha", "t", "topK",
              "acc (mean±std)", "f1 (mean±std)");
  std::printf("%s\n", std::string(62, '-').c_str());
  Candidate best{};
  double best_acc = -1.0;
  for (const Candidate& c : grid) {
    core::ExperimentConfig config;
    config.model = "AHNTP";
    config.hidden_dims = {32, 16, 8};
    config.trainer.epochs = epochs;
    config.trainer.temperature = c.temperature;
    config.ahntp.mpr_alpha = c.alpha;
    config.ahntp.social_top_k = c.top_k;
    auto result = core::RunRepeatedExperiment(dataset, config, seeds);
    AHNTP_CHECK(result.ok()) << result.status().ToString();
    std::printf("%-7.2f %-6.2f %-6d | %6.2f%% ± %4.2f  | %6.2f%% ± %4.2f\n",
                c.alpha, c.temperature, c.top_k,
                result->accuracy.mean * 100.0, result->accuracy.stddev * 100.0,
                result->f1.mean * 100.0, result->f1.stddev * 100.0);
    std::fflush(stdout);
    if (result->accuracy.mean > best_acc) {
      best_acc = result->accuracy.mean;
      best = c;
    }
  }
  std::printf(
      "\nbest cell: alpha=%.2f t=%.2f topK=%d (acc %.2f%%)\n"
      "paper's operating point: alpha=0.8, t=0.3 (Section V-D).\n",
      best.alpha, best.temperature, best.top_k, best_acc * 100.0);
  return 0;
}
