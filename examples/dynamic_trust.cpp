// Dynamic trust prediction — the paper's future-work direction (Section VI):
// trust networks evolve, and a deployed model must predict *future* trust
// from past edges. This example compares AHNTP under the standard random
// split with the chronological split (train on the oldest 80% of edges,
// test on the newest 20%), and shows how much harder forecasting is than
// in-sample completion.
//
//   ./build/examples/dynamic_trust [--scale=0.06] [--epochs=200]

#include <cstdio>

#include "common/flags.h"
#include "core/experiment.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  const double scale = flags.GetDouble("scale", 0.06);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 200));

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::CiaoLike(scale))
          .Generate();
  std::printf(
      "dataset: %zu users, %zu trust edges with creation times in [0,1]\n\n",
      dataset.num_users, dataset.trust_edges.size());

  for (bool temporal : {false, true}) {
    core::ExperimentConfig config;
    config.model = "AHNTP";
    config.hidden_dims = {64, 32, 16};
    config.trainer.epochs = epochs;
    config.temporal_split = temporal;
    auto result = core::RunExperiment(dataset, config);
    AHNTP_CHECK(result.ok()) << result.status().ToString();
    std::printf("%-18s test: %s\n",
                temporal ? "temporal split" : "random split",
                result->test.ToString().c_str());
  }

  std::printf(
      "\nExpected: the temporal split scores lower — new edges preferentially\n"
      "attach to rising users whose influence the training window has only\n"
      "partially observed. This is the evaluation regime a dynamic extension\n"
      "of AHNTP (temporal hyperedges, time-aware attention) would target.\n");
  return 0;
}
