// Resumable, fault-tolerant experiment sweep (DESIGN.md §10). Runs a
// repeated AHNTP experiment, checkpointing sweep state after every run so
// an interrupted sweep continues where it left off — bit-identical to an
// uninterrupted one at the same seeds.
//
//   # fresh sweep, checkpointed to /tmp/sweep.state
//   ./build/examples/resumable_sweep --runs=5 --state=/tmp/sweep.state
//
//   # interrupt it (Ctrl-C), then continue:
//   ./build/examples/resumable_sweep --runs=5 --state=/tmp/sweep.state --resume
//
//   # exercise the degraded path with injected faults: run 1 throws, and
//   # the second save of the sweep state fails once.
//   ./build/examples/resumable_sweep --runs=4 --state=/tmp/sweep.state
//       --fault_spec="experiment.run@2,sweep.state.save@2"

#include <cstdio>

#include "common/flags.h"
#include "core/repeated.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  ApplyRuntimeFlags(flags);  // threads, fault_spec / fault_seed, ...
  const double scale = flags.GetDouble("scale", 0.04);
  const int runs = static_cast<int>(flags.GetInt("runs", 4));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 15));

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::CiaoLike(scale))
          .Generate();

  core::ExperimentConfig config;
  config.model = "AHNTP";
  config.hidden_dims = {32, 16};
  config.trainer.epochs = epochs;

  core::SweepOptions options;
  options.state_path = flags.GetString("state", "/tmp/ahntp_sweep.state");
  options.resume = flags.GetBool("resume", false);
  std::printf("sweep: %d runs, state=%s, resume=%s\n", runs,
              options.state_path.c_str(), options.resume ? "yes" : "no");

  auto result = core::RunRepeatedExperiment(dataset, config, runs,
                                            /*vary_split_seed=*/false,
                                            options);
  if (!result.ok()) {
    std::printf("sweep failed entirely: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString().c_str());
  std::printf("(%d of %d runs recovered from the state file; total train "
              "time %.1fs)\n",
              result->num_resumed, runs, result->total_train_seconds);
  if (result->num_failed > 0) {
    std::printf("re-run with --resume true to retry the %d failed run(s)\n",
                result->num_failed);
  }
  return 0;
}
