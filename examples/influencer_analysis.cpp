// Influencer analysis: compares plain PageRank with the paper's Motif-based
// PageRank (Section IV-B.1) on a generated social network, reports the most
// influential users, and shows how triangle motifs reshape the ranking.
//
//   ./build/examples/influencer_analysis [--scale 0.05] [--alpha 0.8]

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/flags.h"
#include "data/generator.h"
#include "graph/analytics.h"
#include "graph/motifs.h"
#include "graph/pagerank.h"

namespace {

std::vector<size_t> TopK(const std::vector<double>& scores, size_t k) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&scores](size_t a, size_t b) {
                      return scores[a] > scores[b];
                    });
  order.resize(k);
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  const double scale = flags.GetDouble("scale", 0.05);
  const double alpha = flags.GetDouble("alpha", 0.8);

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::EpinionsLike(scale))
          .Generate();
  auto graph = dataset.TrustGraph();
  AHNTP_CHECK(graph.ok());
  std::printf("network: %zu users, %zu trust edges, reciprocity %.2f\n\n",
              graph->num_nodes(), graph->num_edges(), graph->Reciprocity());

  // Motif census (Fig. 4 / Table II).
  std::printf("triangle motif census:\n");
  auto motifs = graph::AllMotifAdjacencies(graph->Adjacency());
  for (int k = 0; k < 7; ++k) {
    std::printf("  M%d: %ld instances\n", k + 1,
                static_cast<long>(
                    graph::CountMotifInstances(motifs[static_cast<size_t>(k)])));
  }

  // Plain PageRank vs Motif-based PageRank.
  std::vector<double> pr = graph::PageRank(graph->Adjacency());
  graph::MotifPageRankOptions options;
  options.alpha = alpha;
  options.motif = graph::Motif::kM6;
  graph::MotifPageRankResult mpr =
      graph::MotifPageRank(graph->Adjacency(), options);

  std::printf("\n%-28s | %-28s\n", "top-10 by PageRank",
              "top-10 by Motif PageRank (M6)");
  auto top_pr = TopK(pr, 10);
  auto top_mpr = TopK(mpr.scores, 10);
  for (size_t i = 0; i < 10; ++i) {
    std::printf("user %-5zu score %.5f      | user %-5zu score %.5f\n",
                top_pr[i], pr[top_pr[i]], top_mpr[i],
                mpr.scores[top_mpr[i]]);
  }

  // Rank displacement: how much does the motif term reorder the top users?
  size_t overlap = 0;
  for (size_t u : top_mpr) {
    if (std::find(top_pr.begin(), top_pr.end(), u) != top_pr.end()) {
      ++overlap;
    }
  }
  std::printf(
      "\ntop-10 overlap between the two rankings: %zu/10 (alpha=%.2f; lower "
      "alpha -> more motif influence)\n",
      overlap, alpha);

  // Degree vs motif participation of the top motif-ranked user.
  size_t star = top_mpr[0];
  std::vector<int> cores = graph::CoreNumbers(*graph);
  int max_core = *std::max_element(cores.begin(), cores.end());
  std::printf(
      "most influential user by MPR: user %zu (in-degree %zu, out-degree "
      "%zu, community %d, %d-core of a %d-core network)\n",
      star, graph->InDegree(static_cast<int>(star)),
      graph->OutDegree(static_cast<int>(star)), dataset.communities[star],
      cores[star], max_core);
  std::printf(
      "network structure: clustering coefficient %.3f, degree Gini %.2f\n",
      graph::AverageClusteringCoefficient(*graph),
      graph::ComputeDegreeStats(*graph).gini);
  return 0;
}
