// Hypergraph tour: a walkthrough of the library's hypergraph layer — the
// four hypergroup builders of Section IV-B, incidence structure, the
// spectral operators, and one adaptive convolution forward pass.
//
//   ./build/examples/hypergraph_tour [--scale 0.04]

#include <cstdio>

#include "common/flags.h"
#include "core/adaptive_conv.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/pagerank.h"
#include "hypergraph/builders.h"
#include "hypergraph/regularizer.h"

namespace {

void Describe(const char* label, const ahntp::hypergraph::Hypergraph& hg) {
  double avg_size = hg.num_edges() == 0
                        ? 0.0
                        : static_cast<double>(hg.TotalIncidences()) /
                              static_cast<double>(hg.num_edges());
  size_t covered = 0;
  for (int c : hg.VertexEdgeCounts()) covered += c > 0 ? 1 : 0;
  std::printf("  %-22s %5zu hyperedges, avg size %5.1f, covers %zu/%zu users\n",
              label, hg.num_edges(), avg_size, covered, hg.num_vertices());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  const double scale = flags.GetDouble("scale", 0.04);

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::EpinionsLike(scale))
          .Generate();
  auto graph = dataset.TrustGraph();
  AHNTP_CHECK(graph.ok());
  std::printf("base graph: %zu users, %zu trust edges\n\n",
              graph->num_nodes(), graph->num_edges());

  // --- The four hypergroups (Section IV-B). -------------------------------
  std::printf("hypergroup construction:\n");
  graph::MotifPageRankOptions mpr_options;
  auto mpr = graph::MotifPageRank(graph->Adjacency(), mpr_options);
  hypergraph::Hypergraph social = hypergraph::BuildSocialInfluenceHypergroup(
      graph.value(), mpr.scores, /*top_k=*/5);
  Describe("social influence", social);

  hypergraph::Hypergraph attr = hypergraph::BuildAttributeHypergroup(
      dataset.num_users, dataset.attributes);
  Describe("attribute", attr);

  hypergraph::Hypergraph pairwise =
      hypergraph::BuildPairwiseHypergroup(graph.value());
  Describe("pairwise", pairwise);

  hypergraph::MultiHopOptions hop_options;
  hop_options.num_hops = 2;
  hypergraph::Hypergraph multihop =
      hypergraph::BuildMultiHopHypergroup(graph.value(), hop_options);
  Describe("multi-hop (N=2)", multihop);

  hypergraph::Hypergraph node_level = hypergraph::Hypergraph::Concat(
      social, attr);
  hypergraph::Hypergraph structure_level =
      hypergraph::Hypergraph::Concat(pairwise, multihop);
  std::printf("\nconcatenated tiers (Eq. 6-9):\n");
  Describe("node level", node_level);
  Describe("structure level", structure_level);

  // --- Spectral structure. -------------------------------------------------
  tensor::CsrMatrix adjacency = node_level.NormalizedAdjacency();
  std::printf(
      "\nnode-level normalized adjacency: %zux%zu with %zu nonzeros "
      "(%.3f%% dense)\n",
      adjacency.rows(), adjacency.cols(), adjacency.nnz(),
      100.0 * static_cast<double>(adjacency.nnz()) /
          (static_cast<double>(adjacency.rows()) *
           static_cast<double>(adjacency.cols())));

  // --- One adaptive convolution pass (Eqs. 10-16). -------------------------
  Rng rng(7);
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);
  core::AdaptiveHypergraphConv conv(node_level, features.cols(), 16, &rng);
  autograd::Variable x = autograd::Constant(features);
  autograd::Variable y = conv.Forward(x);
  std::printf(
      "\nadaptive conv: %zux%zu features -> %zux%zu embeddings "
      "(%zu trainable parameters)\n",
      features.rows(), features.cols(), y.rows(), y.cols(),
      conv.NumParameters());

  // --- Smoothness (Eq. 24): embeddings of users sharing hyperedges. --------
  autograd::Variable smooth = hypergraph::HypergraphSmoothness(y, node_level);
  std::printf("hypergraph smoothness R(f) of the (untrained) embedding: %.4f\n",
              smooth.value().At(0, 0));
  std::printf("\n(lower R(f) = smoother embeddings across hyperedges; the\n"
              " trainer can add this as the Eq. 23 regularizer)\n");
  return 0;
}
