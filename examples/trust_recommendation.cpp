// Trust recommendation: the paper's motivating scenario (Section I) — a
// merchant wants to find which users would trust a given reviewer. Trains
// AHNTP, then ranks unconnected candidate users by predicted trust toward a
// target user and checks the recommendations against held-out edges.
//
//   ./build/examples/trust_recommendation [--scale 0.06] [--epochs 60]

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>

#include "common/flags.h"
#include "core/model_zoo.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  const double scale = flags.GetDouble("scale", 0.06);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 60));

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(data::GeneratorConfig::CiaoLike(scale))
          .Generate();
  data::TrustSplit split = data::MakeSplit(dataset);
  auto train_graph = dataset.GraphFromEdges(split.train_positive);
  AHNTP_CHECK(train_graph.ok());
  tensor::Matrix features = data::BuildFeatureMatrix(dataset);
  Rng rng(1);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &train_graph.value();
  inputs.dataset = &dataset;
  inputs.hidden_dims = {64, 32, 16};
  inputs.rng = &rng;

  auto spec = core::CreateEncoder("AHNTP", inputs, core::AhntpConfig{});
  AHNTP_CHECK(spec.ok());
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  core::TrainerConfig trainer_config;
  trainer_config.epochs = epochs;
  core::Trainer trainer(trainer_config);
  std::printf("training AHNTP on %zu users (%d epochs)...\n",
              dataset.num_users, epochs);
  AHNTP_CHECK(trainer.Fit(&predictor, split.train_pairs).ok());
  core::BinaryMetrics test = trainer.Evaluate(&predictor, split.test_pairs);
  std::printf("test metrics: %s\n\n", test.ToString().c_str());

  // Pick a target user that has held-out trustors (people who trust them in
  // the test set).
  std::set<int> held_out_trustors;
  int target = split.test_positive.front().dst;
  for (const graph::Edge& e : split.test_positive) {
    if (e.dst == target) held_out_trustors.insert(e.src);
  }

  // Score every user without an observed training edge toward the target.
  std::vector<data::TrustPair> candidates;
  for (size_t u = 0; u < dataset.num_users; ++u) {
    int src = static_cast<int>(u);
    if (src == target) continue;
    if (train_graph->HasEdge(src, target)) continue;
    candidates.push_back({src, target, 0.0f});
  }
  std::vector<float> scores = predictor.PredictProbabilities(candidates);

  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });

  std::printf("top-10 predicted trustors of user %d:\n", target);
  size_t hits = 0;
  for (size_t i = 0; i < std::min<size_t>(10, order.size()); ++i) {
    const data::TrustPair& pair = candidates[order[i]];
    bool held_out = held_out_trustors.count(pair.src) > 0;
    if (held_out) ++hits;
    std::printf("  user %-5d p(trust)=%.3f  community=%-3d %s\n", pair.src,
                scores[order[i]], dataset.communities[static_cast<size_t>(pair.src)],
                held_out ? "<-- held-out true trustor" : "");
  }
  std::printf(
      "\n%zu of the target's %zu held-out trustors appear in the top-10.\n",
      hits, held_out_trustors.size());
  std::printf("(target user %d belongs to community %d)\n", target,
              dataset.communities[static_cast<size_t>(target)]);

  // Why does the model embed the target this way? Inspect the hyperedges
  // the final adaptive-convolution layer attends to (Eq. 15).
  auto* ahntp = dynamic_cast<core::AhntpModel*>(spec->encoder.get());
  AHNTP_CHECK(ahntp != nullptr);
  std::printf("\nmost influential hyperedges for user %d's embedding:\n",
              target);
  for (const auto& info : ahntp->ExplainUser(target, 5)) {
    std::printf("  [%s/%s] attention %.3f, %zu members {", info.branch.c_str(),
                info.source.c_str(), info.attention, info.members.size());
    for (size_t i = 0; i < std::min<size_t>(6, info.members.size()); ++i) {
      std::printf(i == 0 ? "%d" : ", %d", info.members[i]);
    }
    if (info.members.size() > 6) std::printf(", ...");
    std::printf("}\n");
  }
  return 0;
}
